//! The TCP front: an accept loop feeding per-connection threads that speak
//! the [`codec`](crate::codec) protocol against one shared [`FlowService`].
//!
//! # Connection model
//!
//! The accept loop admits at most `max_connections` live connections
//! (resolved by [`resolve_worker_threads`], the same knob that sizes the
//! service's query pool); further clients wait in the OS accept backlog.
//! Each connection runs **two** threads so requests pipeline for real:
//!
//! * the *reader* parses request lines and immediately submits each query
//!   to the service ([`FlowService::submit`] — non-blocking up to the
//!   service queue's backpressure), pushing the resulting [`Ticket`] into
//!   an in-order reply channel;
//! * the *writer* pops tickets in submission order, waits for each answer,
//!   and writes the encoded envelope back.
//!
//! A client that sends ten requests without reading has all ten in flight
//! across the service's worker pool, yet always receives responses in
//! request order. Malformed lines never kill the connection: they produce
//! an `error` response in order, and the reader keeps going.
//!
//! `update <nbytes>` reads the new source inline, compiles it server-side,
//! and routes it through [`FlowService::update`]; the reader then blocks in
//! [`FlowService::wait_for_epoch`] until the new snapshot serves, making an
//! update a per-connection sync point — the `updated <epoch>` ack and every
//! request pipelined after it reflect the pushed epoch (or later), while
//! other connections keep querying throughout. `shutdown` answers `bye` and
//! gracefully stops the whole server: the listener closes, live connections
//! are shut down, and dropping the service drains every outstanding ticket.

use crate::budget::{constant_time_eq, read_line_bounded, BoundedLine, RateLimiter};
use crate::codec::{self, Command};
use flowistry_engine::scheduler::resolve_worker_threads;
use flowistry_engine::{FlowService, QueryEnvelope, QueryRequest, QueryResponse, Ticket};
use flowistry_fault::{sites as fault_sites, Fault};
use flowistry_obs::{Counter, Histogram, Registry};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`FlowServer`].
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Maximum live connections. `0` (the default) resolves like every
    /// other pool in the engine: `FLOWISTRY_ENGINE_THREADS` if set, else
    /// available parallelism. Further clients wait in the accept backlog.
    pub max_connections: usize,
    /// When set, every connection must authenticate with
    /// `auth <esc-token>` before any other command is served; wrong or
    /// missing tokens get structured `error` responses (compared in
    /// constant time). `None` (the default) disables the preamble.
    pub auth_token: Option<String>,
    /// Per-connection request-rate budget in requests/second (token
    /// bucket). `0.0` (the default) disables rate limiting.
    pub rate_limit: f64,
    /// Burst ceiling of the rate budget; only meaningful when `rate_limit`
    /// is set. `0` defaults to 64.
    pub rate_burst: u32,
    /// Per-connection request-line size budget in bytes; longer lines are
    /// drained and answered with a structured error. `0` (the default)
    /// means 1 MiB.
    pub max_line_bytes: usize,
    /// Size budget for `update` source bodies in bytes. `0` (the default)
    /// means 16 MiB.
    pub max_update_bytes: usize,
}

impl ServerConfig {
    /// Sets the live-connection cap (`0` = auto).
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max;
        self
    }

    /// Requires the `auth <esc-token>` connection preamble.
    pub fn with_auth_token(mut self, token: impl Into<String>) -> Self {
        self.auth_token = Some(token.into());
        self
    }

    /// Sets the per-connection request-rate budget (`0.0` = off) and its
    /// burst ceiling (`0` = default burst).
    pub fn with_rate_limit(mut self, per_sec: f64, burst: u32) -> Self {
        self.rate_limit = per_sec;
        self.rate_burst = burst;
        self
    }

    /// Sets the per-connection request-line size budget (`0` = 1 MiB).
    pub fn with_max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes;
        self
    }

    /// Sets the `update` body size budget (`0` = 16 MiB).
    pub fn with_max_update_bytes(mut self, bytes: usize) -> Self {
        self.max_update_bytes = bytes;
        self
    }

    /// The effective request-line budget.
    pub(crate) fn effective_max_line_bytes(&self) -> usize {
        if self.max_line_bytes == 0 {
            1 << 20
        } else {
            self.max_line_bytes
        }
    }

    /// The effective `update` body budget.
    pub(crate) fn effective_max_update_bytes(&self) -> usize {
        if self.max_update_bytes == 0 {
            16 << 20
        } else {
            self.max_update_bytes
        }
    }

    /// The effective burst ceiling.
    pub(crate) fn effective_rate_burst(&self) -> u32 {
        if self.rate_burst == 0 {
            64
        } else {
            self.rate_burst
        }
    }
}

/// Wire-level counters and latency histograms, registered on the same
/// [`Registry`] the service and engine report into so one `metrics` scrape
/// covers the whole stack.
struct ServerMetrics {
    connections: Arc<Counter>,
    requests: Arc<Counter>,
    decode_errors: Arc<Counter>,
    auth_failures: Arc<Counter>,
    rate_limited: Arc<Counter>,
    oversize_lines: Arc<Counter>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    /// Decode-to-flush wire latency, one histogram per request kind
    /// (indexed by [`QueryRequest::kind_index`]).
    request_wire: Vec<Arc<Histogram>>,
}

impl ServerMetrics {
    fn new(registry: &Registry) -> ServerMetrics {
        ServerMetrics {
            connections: registry.counter(
                "flow_server_connections_total",
                "TCP connections accepted and served",
            ),
            requests: registry.counter(
                "flow_server_requests_total",
                "Wire command lines successfully decoded",
            ),
            decode_errors: registry.counter(
                "flow_server_decode_errors_total",
                "Wire command lines rejected by the codec",
            ),
            auth_failures: registry.counter(
                "flow_server_auth_failures_total",
                "Commands rejected for missing or wrong auth preamble",
            ),
            rate_limited: registry.counter(
                "flow_server_rate_limited_total",
                "Commands rejected by the per-connection rate budget",
            ),
            oversize_lines: registry.counter(
                "flow_server_oversize_lines_total",
                "Request lines rejected by the per-connection size budget",
            ),
            bytes_read: registry.counter(
                "flow_server_bytes_read_total",
                "Bytes read from clients (command lines and update bodies)",
            ),
            bytes_written: registry.counter(
                "flow_server_bytes_written_total",
                "Bytes written to clients (response lines)",
            ),
            request_wire: QueryRequest::KINDS
                .iter()
                .map(|kind| {
                    registry.histogram(
                        &format!("flow_server_request_wire_seconds{{kind=\"{kind}\"}}"),
                        "Wire latency from request decode to response flush",
                    )
                })
                .collect(),
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct ServerShared {
    service: FlowService,
    metrics: ServerMetrics,
    /// Auth and budget knobs, consulted by every connection reader.
    config: ServerConfig,
    shutdown: AtomicBool,
    /// Live connection count, gating the accept loop at `max_connections`.
    active: Mutex<usize>,
    slot_freed: Condvar,
    /// One stream clone per live connection (slot-indexed, `None` when the
    /// connection ended), so shutdown can cut blocked readers loose.
    conn_streams: Mutex<Vec<Option<TcpStream>>>,
}

/// Registers a clone of `stream` for shutdown to cut loose; returns the
/// slot to clear when the connection ends.
fn register_stream(shared: &ServerShared, stream: &TcpStream) -> Option<usize> {
    let clone = stream.try_clone().ok()?;
    let mut streams = shared.conn_streams.lock().expect("conn stream lock");
    match streams.iter().position(Option::is_none) {
        Some(i) => {
            streams[i] = Some(clone);
            Some(i)
        }
        None => {
            streams.push(Some(clone));
            Some(streams.len() - 1)
        }
    }
}

fn unregister_stream(shared: &ServerShared, slot: Option<usize>) {
    if let Some(i) = slot {
        shared.conn_streams.lock().expect("conn stream lock")[i] = None;
    }
}

/// A running TCP front over one [`FlowService`]: see the [module
/// docs](self).
pub struct FlowServer {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
}

impl FlowServer {
    /// Binds `addr` (use port `0` for an ephemeral port) and starts
    /// accepting connections against `service`.
    pub fn bind(
        service: FlowService,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<FlowServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let max_connections = resolve_worker_threads(config.max_connections);
        let metrics = ServerMetrics::new(service.metrics_registry());
        let shared = Arc::new(ServerShared {
            service,
            metrics,
            config,
            shutdown: AtomicBool::new(false),
            active: Mutex::new(0),
            slot_freed: Condvar::new(),
            conn_streams: Mutex::new(Vec::new()),
        });
        let accept_handle = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("flow-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener, max_connections))
                .expect("spawn accept loop")
        };
        Ok(FlowServer {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address the server is listening on (with the real port when
    /// bound to port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The metrics registry the whole stack (engine, service, and this
    /// server's wire layer) reports into — what the wire `metrics` command
    /// renders.
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        self.shared.service.metrics_registry()
    }

    /// Whether a `shutdown` command (or [`FlowServer::shutdown`]) has been
    /// received.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the server has shut down (via the wire `shutdown`
    /// command or a concurrent [`FlowServer::shutdown`] call) and every
    /// connection has been answered and closed.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Dropping `self` runs the rest of the teardown (idempotently).
    }

    /// Initiates a graceful shutdown: stop accepting, cut live connections
    /// loose, and (on drop) drain every outstanding ticket.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared, self.local_addr);
    }
}

impl Drop for FlowServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Wait for every connection thread to finish: they hold the shared
        // state alive, and their tickets are answered by the service (or by
        // its drain-on-drop) before the server is considered gone.
        let mut active = self.shared.active.lock().expect("server active lock");
        while *active > 0 {
            active = self
                .shared
                .slot_freed
                .wait(active)
                .expect("server active lock");
        }
    }
}

/// Flips the shutdown flag and wakes everyone who might be blocked: the
/// accept loop (via a loopback connect), blocked connection readers (via a
/// read-side shutdown of their streams — writers keep flushing), and the
/// slot condvar.
fn initiate_shutdown(shared: &ServerShared, local_addr: SocketAddr) {
    let first = !shared.shutdown.swap(true, Ordering::SeqCst);
    // Wake a (possibly) blocked `accept` with a throwaway connection, on
    // *every* call: the first attempt can fail under fd pressure (connect
    // needs a free descriptor), and the retry from a later drop()/wait()
    // is then what stands between a parked accept thread and a permanent
    // hang. Extra wakeups are harmless — the accept loop just closes them.
    // If the listener is already gone the connect simply fails.
    let _ = TcpStream::connect(local_addr);
    {
        let _guard = shared.active.lock().expect("server active lock");
        shared.slot_freed.notify_all();
    }
    if !first {
        return;
    }
    // Cut only the *read* side: parked readers unblock (read_line returns
    // 0) and stop ingesting new requests, but each connection's writer can
    // still flush responses for everything already accepted — the
    // "answered before the listener goes away" guarantee depends on the
    // write side staying open.
    let streams = shared.conn_streams.lock().expect("conn stream lock");
    for stream in streams.iter().flatten() {
        let _ = stream.shutdown(Shutdown::Read);
    }
}

fn accept_loop(shared: &Arc<ServerShared>, listener: &TcpListener, max_connections: usize) {
    loop {
        // Admission control: at most `max_connections` live connections.
        {
            let mut active = shared.active.lock().expect("server active lock");
            while *active >= max_connections && !shared.shutdown.load(Ordering::SeqCst) {
                active = shared.slot_freed.wait(active).expect("server active lock");
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            *active += 1;
        }
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                release_slot(shared);
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Persistent accept errors (fd exhaustion) must not turn
                // this thread into a hot spin loop next to the workers.
                std::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wakeup connect (or a client racing the shutdown): close
            // it without serving.
            release_slot(shared);
            break;
        }
        // Writers must be able to finish flushing during shutdown (the
        // sweep leaves the write side open for exactly that), so a client
        // that stops reading cannot be allowed to park a writer forever
        // and wedge teardown: bound every send.
        let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(30)));
        // A connection shutdown() cannot reach must not be served at all:
        // its reader could block in read_line forever and hang the final
        // active-count wait. Refuse it instead (try_clone only fails under
        // fd exhaustion, where shedding load is the right move anyway).
        let Some(slot) = register_stream(shared, &stream) else {
            drop(stream);
            release_slot(shared);
            continue;
        };
        let slot = Some(slot);
        // Re-check *after* registering: a shutdown that raced in between
        // may have swept conn_streams before this stream was in it, and the
        // sweep runs only once — cut the straggler ourselves or its reader
        // would park forever and wedge the final active-count wait.
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            unregister_stream(shared, slot);
            release_slot(shared);
            break;
        }
        let shared_for_conn = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("flow-conn".to_string())
            .spawn(move || {
                handle_connection(&shared_for_conn, stream);
                unregister_stream(&shared_for_conn, slot);
                release_slot(&shared_for_conn);
            });
        if spawned.is_err() {
            unregister_stream(shared, slot);
            release_slot(shared);
        }
    }
    // No more connections will be admitted; dropping the listener (by
    // returning) closes the socket.
}

fn release_slot(shared: &ServerShared) {
    let mut active = shared.active.lock().expect("server active lock");
    *active -= 1;
    shared.slot_freed.notify_all();
}

/// What the reader hands the writer, in request order.
enum Pending {
    /// A submitted query: wait on the ticket, encode the envelope. Carries
    /// the decode timestamp and request-kind index so the writer can
    /// observe decode-to-flush wire latency.
    Query(Ticket, Instant, usize),
    /// An accepted update, already applied: the reader waited for the epoch
    /// swap (the connection's sync point), so the ack just gets written.
    Update(u64),
    /// A pre-rendered line (decode errors, `bye`).
    Line(String),
}

fn handle_connection(shared: &Arc<ServerShared>, stream: TcpStream) {
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let (tx, rx) = std::sync::mpsc::channel::<Pending>();
    let writer_stream = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    shared.metrics.connections.inc();
    let shared_for_writer = shared.clone();
    // If the writer dies first — a write error, an injected fault, a panic —
    // the socket must close with it: the reader clone would otherwise keep
    // the connection half-open with nobody left to answer, and a peer
    // blocked on a response would wait forever instead of seeing EOF.
    struct CloseOnExit(Option<TcpStream>);
    impl Drop for CloseOnExit {
        fn drop(&mut self) {
            if let Some(stream) = &self.0 {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
    let writer_guard = CloseOnExit(writer_stream.try_clone().ok());
    let writer = std::thread::Builder::new()
        .name("flow-conn-writer".to_string())
        .spawn(move || {
            let _guard = writer_guard;
            writer_loop(&shared_for_writer, writer_stream, rx);
        });
    let Ok(writer) = writer else { return };

    let shutdown_requested = reader_loop(shared, reader, &tx);

    // Close the reply channel: the writer drains what is pending (including
    // the `bye` acknowledging a shutdown command), then exits. Only after
    // the client has its answers does a requested shutdown start tearing
    // other connections down.
    drop(tx);
    let _ = writer.join();
    if shutdown_requested {
        let addr = stream
            .local_addr()
            .unwrap_or_else(|_| SocketAddr::from(([127, 0, 0, 1], 0)));
        initiate_shutdown(shared, addr);
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Reads request lines until EOF, error, or `shutdown`, submitting work and
/// queueing replies in order. Returns whether a server shutdown was
/// requested.
fn reader_loop(
    shared: &Arc<ServerShared>,
    mut reader: BufReader<TcpStream>,
    tx: &Sender<Pending>,
) -> bool {
    let mut line = String::new();
    let max_line = shared.config.effective_max_line_bytes();
    let mut limiter = RateLimiter::new(
        shared.config.rate_limit,
        shared.config.effective_rate_burst(),
    );
    // Connections are born authenticated when no token is configured.
    let mut authed = shared.config.auth_token.is_none();
    let error_line = |msg: String| {
        Pending::Line(codec::encode_envelope(&QueryEnvelope {
            epoch: shared.service.current_epoch(),
            response: QueryResponse::Error(msg),
            trace_id: None,
        }))
    };
    loop {
        match read_line_bounded(&mut reader, &mut line, max_line) {
            Err(_) | Ok(BoundedLine::Eof) => return false, // EOF or a cut connection
            Ok(BoundedLine::Line(n)) => shared.metrics.bytes_read.add(n as u64),
            Ok(BoundedLine::TooLong(n)) => {
                shared.metrics.bytes_read.add(n as u64);
                shared.metrics.oversize_lines.inc();
                let pending =
                    error_line(format!("request line exceeds the {max_line}-byte budget"));
                if tx.send(pending).is_err() {
                    return false;
                }
                continue;
            }
        }
        if line.is_empty() {
            continue; // blank keep-alive lines are ignored
        }
        // The rate budget admits *command lines*, well-formed or not: a
        // client spraying garbage spends budget exactly like a legitimate
        // one. Rejected commands are answered, not dropped — and never
        // forwarded to the service.
        if !limiter.allow() {
            shared.metrics.rate_limited.inc();
            let pending = error_line(format!(
                "rate limit exceeded ({} requests/s)",
                shared.config.rate_limit
            ));
            if tx.send(pending).is_err() {
                return false;
            }
            continue;
        }
        let trimmed = line.as_str();
        let decoded_at = Instant::now();
        // The frame-read failpoint: `err` models an undecodable frame
        // (the client gets the same structured error a real decode
        // failure produces), `delay` a stalled read, `panic` a reader
        // crash — the connection drops, never the server.
        match flowistry_fault::check(fault_sites::CODEC_FRAME_READ) {
            Fault::None | Fault::PartialWrite(_) => {}
            Fault::Delay(d) => std::thread::sleep(d),
            Fault::Err => {
                shared.metrics.decode_errors.inc();
                let pending = error_line(format!(
                    "malformed request: injected fault {}",
                    fault_sites::CODEC_FRAME_READ
                ));
                if tx.send(pending).is_err() {
                    return false;
                }
                continue;
            }
            Fault::Panic => {
                panic!(
                    "failpoint {}: injected panic",
                    fault_sites::CODEC_FRAME_READ
                )
            }
        }
        let command = codec::decode_command(trimmed);
        // The auth preamble gates everything but itself: before a valid
        // token arrives, every other command — including malformed lines,
        // updates, and shutdowns — answers the same structured error.
        if !authed && !matches!(command, Ok(Command::Auth { .. })) {
            shared.metrics.auth_failures.inc();
            let pending = error_line("authentication required: send `auth <token>` first".into());
            if tx.send(pending).is_err() {
                return false;
            }
            continue;
        }
        let pending = match command {
            Err(msg) => {
                shared.metrics.decode_errors.inc();
                error_line(format!("malformed request: {msg}"))
            }
            Ok(Command::Auth { token }) => {
                shared.metrics.requests.inc();
                let accepted = match &shared.config.auth_token {
                    // Constant-time compare: an `auth` probe learns nothing
                    // about *where* its guess diverged.
                    Some(expected) => constant_time_eq(expected.as_bytes(), token.as_bytes()),
                    // No token configured: acknowledge, so clients can send
                    // the preamble unconditionally.
                    None => true,
                };
                if accepted {
                    authed = true;
                    Pending::Line(codec::AUTHED_LINE.to_string())
                } else {
                    shared.metrics.auth_failures.inc();
                    error_line("bad auth token".to_string())
                }
            }
            Ok(Command::Query {
                request,
                trace_id,
                deadline_ms,
            }) => {
                shared.metrics.requests.inc();
                let kind = request.kind_index();
                Pending::Query(
                    shared.service.submit_with_deadline(
                        request,
                        trace_id,
                        deadline_ms.map(Duration::from_millis),
                    ),
                    decoded_at,
                    kind,
                )
            }
            Ok(Command::Update { bytes, epoch }) => {
                shared.metrics.requests.inc();
                let mut pending = read_update(shared, &mut reader, bytes, epoch);
                // An update is a sync point for *this connection*: requests
                // pipelined after it must be served from the new epoch (or a
                // later one), so don't touch the next line until the swap
                // happened. Other connections keep querying the old snapshot
                // throughout — this holds back one reader, not the service.
                if let Pending::Update(epoch) = &pending {
                    let epoch = *epoch;
                    shared.service.wait_for_epoch(epoch);
                    // The epoch counter advances even when the background
                    // re-analysis panicked (so waiters never hang) — but
                    // then the snapshot did NOT change, and acknowledging
                    // success would be a lie. Tell the client instead.
                    let serving = shared.service.snapshot().epoch();
                    if serving < epoch {
                        pending = Pending::Line(codec::encode_envelope(&QueryEnvelope {
                            epoch: serving,
                            response: QueryResponse::Error(format!(
                                "update {epoch} failed during re-analysis; \
                                 epoch {serving} still serving"
                            )),
                            trace_id: None,
                        }));
                    }
                }
                pending
            }
            Ok(Command::Shutdown) => {
                shared.metrics.requests.inc();
                let _ = tx.send(Pending::Line(codec::BYE_LINE.to_string()));
                return true;
            }
        };
        if tx.send(pending).is_err() {
            return false; // writer is gone (connection cut)
        }
    }
}

/// Reads the `bytes` source bytes of an `update` command (plus the
/// terminating newline), compiles, and schedules the swap.
fn read_update(
    shared: &ServerShared,
    reader: &mut BufReader<TcpStream>,
    bytes: usize,
    target_epoch: Option<u64>,
) -> Pending {
    let max_update_bytes = shared.config.effective_max_update_bytes();
    let error = |msg: String| {
        Pending::Line(codec::encode_envelope(&QueryEnvelope {
            epoch: shared.service.current_epoch(),
            response: QueryResponse::Error(msg),
            trace_id: None,
        }))
    };
    if bytes > max_update_bytes {
        // Drain the announced body before answering, or the rest of the
        // connection would parse megabytes of source text as command lines.
        if io::copy(&mut reader.by_ref().take(bytes as u64), &mut io::sink()).is_err() {
            return error("update source truncated".to_string());
        }
        shared.metrics.bytes_read.add(bytes as u64);
        let _ = consume_newline(reader);
        return error(format!(
            "update of {bytes} bytes exceeds {max_update_bytes}"
        ));
    }
    let mut source = vec![0u8; bytes];
    if reader.read_exact(&mut source).is_err() {
        return error("update source truncated".to_string());
    }
    shared.metrics.bytes_read.add(bytes as u64);
    if let Err(msg) = consume_newline(reader) {
        return error(msg);
    }
    let source = match String::from_utf8(source) {
        Ok(s) => s,
        Err(_) => return error("update source is not UTF-8".to_string()),
    };
    match flowistry_lang::compile(&source) {
        Ok(program) => Pending::Update(shared.service.update_at(program, target_epoch)),
        Err(diag) => error(format!("update failed to compile: {}", diag.message)),
    }
}

/// Consumes the newline terminating an `update` source block. The newline
/// is consumed only if it is actually there: blindly eating one byte would
/// silently desync the line framing when a client miscounts `<nbytes>`
/// (the next command's first byte would vanish).
fn consume_newline(reader: &mut BufReader<TcpStream>) -> Result<(), String> {
    match reader.fill_buf() {
        Ok(buf) if buf.first() == Some(&b'\n') => {
            reader.consume(1);
            Ok(())
        }
        Ok([]) => Ok(()), // EOF right after the body; the connection is ending
        Ok(_) => Err("update source not followed by a newline (check <nbytes>)".to_string()),
        Err(_) => Err("update source truncated".to_string()),
    }
}

/// Writes replies in request order, waiting on each in turn.
fn writer_loop(shared: &ServerShared, stream: TcpStream, rx: Receiver<Pending>) {
    let mut out = io::BufWriter::new(stream);
    for pending in rx {
        let mut wire = None;
        let line = match pending {
            Pending::Query(ticket, decoded_at, kind) => {
                wire = Some((decoded_at, kind));
                codec::encode_envelope(&ticket.wait())
            }
            Pending::Update(epoch) => codec::encode_update_ack(epoch),
            Pending::Line(line) => line,
        };
        // The frame-write failpoint. `partial_write` flushes a torn
        // frame and drops the connection — the client sees a line with
        // no newline, exactly what a peer crash mid-write produces;
        // `err`/`panic` drop the connection whole.
        match flowistry_fault::check(fault_sites::CODEC_FRAME_WRITE) {
            Fault::None => {}
            Fault::Delay(d) => std::thread::sleep(d),
            Fault::Err => return,
            Fault::Panic => {
                panic!(
                    "failpoint {}: injected panic",
                    fault_sites::CODEC_FRAME_WRITE
                )
            }
            Fault::PartialWrite(frac) => {
                let cut = (line.len() as f64 * frac) as usize;
                let _ = out.write_all(&line.as_bytes()[..cut]);
                let _ = out.flush();
                return;
            }
        }
        if writeln!(out, "{line}").is_err() || out.flush().is_err() {
            return; // client went away; pending tickets still resolve server-side
        }
        shared.metrics.bytes_written.add(line.len() as u64 + 1);
        if let Some((decoded_at, kind)) = wire {
            shared.metrics.request_wire[kind].observe(decoded_at.elapsed());
        }
    }
}
