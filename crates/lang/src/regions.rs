//! Region (provenance) constraint generation over MIR.
//!
//! This pass reconstructs the information that rustc's borrow checker exposes
//! to Flowistry (paper §4.2): *outlives constraints* between region
//! variables. Constraints come from two sources:
//!
//! 1. **Assignments**: storing a value of type `&'a T` into a place of type
//!    `&'b T` requires `'a :> 'b` (the source must outlive the target), so
//!    loans of `'a` flow into the loan set of `'b`.
//! 2. **Calls**: the callee's signature regions are matched against the
//!    concrete regions of the arguments and destination, producing
//!    constraints that connect argument loans to the returned reference and
//!    between arguments that share a signature region, plus any declared
//!    `where 'a: 'b` bounds (paper §2.3).

use crate::mir::*;
use crate::types::{FnSig, RegionVid, StructTable, Ty};
use std::collections::HashMap;

/// Computes and installs the outlives constraints of every body.
///
/// Must be called after lowering and before [`crate::loans::compute_loans`].
pub fn infer_regions(bodies: &mut [Body], signatures: &[FnSig], structs: &StructTable) {
    for body in bodies.iter_mut() {
        let constraints = body_constraints(body, signatures, structs);
        body.outlives = constraints;
    }
}

/// Computes the outlives constraints of one body without installing them.
pub fn body_constraints(
    body: &Body,
    signatures: &[FnSig],
    structs: &StructTable,
) -> Vec<OutlivesConstraint> {
    let mut out = Vec::new();

    // Declared bounds between the body's own universal regions.
    if let Some(sig) = signatures.iter().find(|s| s.name == body.name) {
        for (longer, shorter) in &sig.outlives {
            out.push(OutlivesConstraint {
                longer: *longer,
                shorter: *shorter,
            });
        }
    }

    for bb in body.block_ids() {
        let data = body.block(bb);
        for stmt in &data.statements {
            if let StatementKind::Assign(place, rvalue) = &stmt.kind {
                let rv_ty = rvalue_ty(body, rvalue, structs);
                let place_ty = body.place_ty(place, structs);
                relate_types(&rv_ty, &place_ty, &mut out);
            }
        }
        if let TerminatorKind::Call {
            func,
            args,
            destination,
            ..
        } = &data.terminator().kind
        {
            let sig = &signatures[func.0 as usize];
            call_constraints(body, sig, args, destination, structs, &mut out);
        }
    }

    out.sort_unstable_by_key(|c| (c.longer, c.shorter));
    out.dedup();
    out
}

/// The type of an rvalue, as used for constraint generation.
pub fn rvalue_ty(body: &Body, rvalue: &Rvalue, structs: &StructTable) -> Ty {
    match rvalue {
        Rvalue::Use(op) => operand_ty(body, op, structs),
        Rvalue::BinaryOp(op, ..) => {
            if op.is_comparison() || op.is_logical() {
                Ty::Bool
            } else {
                Ty::Int
            }
        }
        Rvalue::UnaryOp(crate::ast::UnOp::Neg, _) => Ty::Int,
        Rvalue::UnaryOp(crate::ast::UnOp::Not, _) => Ty::Bool,
        Rvalue::Ref {
            region,
            mutbl,
            place,
        } => Ty::make_ref(*region, *mutbl, body.place_ty(place, structs)),
        Rvalue::Aggregate(AggregateKind::Tuple, ops) => {
            Ty::Tuple(ops.iter().map(|o| operand_ty(body, o, structs)).collect())
        }
        Rvalue::Aggregate(AggregateKind::Struct(sid), _) => Ty::Struct(*sid),
    }
}

/// The type of an operand.
pub fn operand_ty(body: &Body, operand: &Operand, structs: &StructTable) -> Ty {
    match operand {
        Operand::Copy(p) | Operand::Move(p) => body.place_ty(p, structs),
        Operand::Constant(ConstValue::Unit) => Ty::Unit,
        Operand::Constant(ConstValue::Int(_)) => Ty::Int,
        Operand::Constant(ConstValue::Bool(_)) => Ty::Bool,
    }
}

/// Walks `src` and `dst` in parallel and emits `src_region :> dst_region` at
/// every reference position.
fn relate_types(src: &Ty, dst: &Ty, out: &mut Vec<OutlivesConstraint>) {
    match (src, dst) {
        (Ty::Ref(r1, _, inner1), Ty::Ref(r2, _, inner2)) => {
            out.push(OutlivesConstraint {
                longer: *r1,
                shorter: *r2,
            });
            relate_types(inner1, inner2, out);
        }
        (Ty::Tuple(a), Ty::Tuple(b)) => {
            for (x, y) in a.iter().zip(b) {
                relate_types(x, y, out);
            }
        }
        _ => {}
    }
}

/// Collects, at each reference position, the pairing between a signature
/// region and the concrete region of the matching type.
fn collect_region_pairs(sig_ty: &Ty, concrete_ty: &Ty, pairs: &mut Vec<(RegionVid, RegionVid)>) {
    match (sig_ty, concrete_ty) {
        (Ty::Ref(sr, _, inner_s), Ty::Ref(cr, _, inner_c)) => {
            pairs.push((*sr, *cr));
            collect_region_pairs(inner_s, inner_c, pairs);
        }
        (Ty::Tuple(a), Ty::Tuple(b)) => {
            for (x, y) in a.iter().zip(b) {
                collect_region_pairs(x, y, pairs);
            }
        }
        _ => {}
    }
}

fn call_constraints(
    body: &Body,
    sig: &FnSig,
    args: &[Operand],
    destination: &Place,
    structs: &StructTable,
    out: &mut Vec<OutlivesConstraint>,
) {
    // Substitution: signature region -> concrete regions it is instantiated
    // with at this call site.
    let mut subst: HashMap<RegionVid, Vec<RegionVid>> = HashMap::new();
    for (sig_ty, arg) in sig.inputs.iter().zip(args) {
        let arg_ty = operand_ty(body, arg, structs);
        let mut pairs = Vec::new();
        collect_region_pairs(sig_ty, &arg_ty, &mut pairs);
        for (sr, cr) in pairs {
            subst.entry(sr).or_default().push(cr);
        }
    }

    // A signature region instantiated with several concrete regions unifies
    // them: loans may flow either way through the callee (e.g. a callee that
    // stores one argument's reference into another).
    for regions in subst.values() {
        for &a in regions {
            for &b in regions {
                if a != b {
                    out.push(OutlivesConstraint {
                        longer: a,
                        shorter: b,
                    });
                }
            }
        }
    }

    // Declared `where` bounds, instantiated.
    for (longer, shorter) in &sig.outlives {
        if let (Some(ls), Some(ss)) = (subst.get(longer), subst.get(shorter)) {
            for &l in ls {
                for &s in ss {
                    out.push(OutlivesConstraint {
                        longer: l,
                        shorter: s,
                    });
                }
            }
        }
    }

    // Return type: loans of every argument region mapped to a signature
    // region appearing in the output flow into the destination's regions.
    let dest_ty = body.place_ty(destination, structs);
    let mut ret_pairs = Vec::new();
    collect_region_pairs(&sig.output, &dest_ty, &mut ret_pairs);
    for (sr, dest_r) in ret_pairs {
        if let Some(concrete) = subst.get(&sr) {
            for &cr in concrete {
                out.push(OutlivesConstraint {
                    longer: cr,
                    shorter: dest_r,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use crate::mir::Local;

    /// Returns the compiled body named `name`.
    fn body(src: &str, name: &str) -> crate::mir::Body {
        let prog = compile(src).unwrap();
        prog.bodies.iter().find(|b| b.name == name).unwrap().clone()
    }

    #[test]
    fn reborrow_chain_produces_constraints() {
        // Mirrors the paper's §2.2 example: x -> y -> z.
        let src = "fn f() {
            let mut x = (0, 0);
            let y = &mut x;
            let z = &mut (*y).1;
            *z = 1;
        }";
        let b = body(src, "f");
        assert!(!b.outlives.is_empty());
    }

    #[test]
    fn call_connects_argument_to_returned_reference() {
        let src = "
            fn get<'a>(p: &'a mut (i32, i32)) -> &'a mut i32 { return &mut (*p).0; }
            fn caller() { let mut t = (1, 2); let r = get(&mut t); *r = 5; }
        ";
        let b = body(src, "caller");
        // The borrow &mut t has some region r_b; the destination of the call
        // has region r_d; there must be a path r_b :> ... :> r_d.
        assert!(!b.outlives.is_empty());
        // And loans must make (*r) alias t.0 or t (checked in loans tests).
    }

    #[test]
    fn where_clause_adds_constraints_between_argument_regions() {
        let src = "
            fn link<'a, 'b>(x: &'a i32, y: &'b i32) -> &'b i32 where 'a: 'b { return y; }
            fn caller(p: &i32, q: &i32) { let r = link(p, q); let v = *r; }
        ";
        let b = body(src, "caller");
        assert!(!b.outlives.is_empty());
    }

    #[test]
    fn no_constraints_for_scalar_code() {
        let b = body("fn f(x: i32, y: i32) -> i32 { return x * y + 1; }", "f");
        assert!(b.outlives.is_empty());
    }

    #[test]
    fn assignment_of_reference_relates_regions() {
        let src = "fn f() {
            let mut x = 1;
            let mut y = 2;
            let mut r = &x;
            r = &y;
            let v = *r;
        }";
        let b = body(src, "f");
        // Two borrows and one local of reference type: at least two
        // constraints (each borrow region outlives r's region).
        assert!(b.outlives.len() >= 2);
        // All constraints reference valid regions.
        for c in &b.outlives {
            assert!((c.longer.0 as usize) < b.regions.len());
            assert!((c.shorter.0 as usize) < b.regions.len());
        }
        let _ = Local(0);
    }
}
