//! Pretty-printing of MIR bodies, in the style of Figure 1 of the paper.

use super::{Body, StatementKind, TerminatorKind};
use crate::types::StructTable;
use std::fmt::Write;

/// Renders a whole body as text, one basic block at a time.
///
/// # Examples
///
/// ```
/// use flowistry_lang::compile;
/// let prog = compile("fn id(x: i32) -> i32 { return x; }").unwrap();
/// let text = flowistry_lang::mir::pretty::body_to_string(&prog.bodies[0], &prog.structs);
/// assert!(text.contains("fn id"));
/// assert!(text.contains("bb0"));
/// ```
pub fn body_to_string(body: &Body, structs: &StructTable) -> String {
    let mut out = String::new();
    let params = body
        .args()
        .map(|l| {
            let d = body.local_decl(l);
            format!(
                "{}: {}",
                d.name.clone().unwrap_or_else(|| l.to_string()),
                d.ty.display(structs)
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let ret_ty = body.local_decl(super::Local::RETURN).ty.clone();
    let _ = writeln!(
        out,
        "fn {}({}) -> {} {{",
        body.name,
        params,
        ret_ty.display(structs)
    );

    for (i, decl) in body.local_decls.iter().enumerate() {
        let name = decl
            .name
            .as_ref()
            .map(|n| format!(" // {n}"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "    let {}_{}: {};{}",
            if decl.mutable { "mut " } else { "" },
            i,
            decl.ty.display(structs),
            name
        );
    }

    for bb in body.block_ids() {
        let data = body.block(bb);
        let _ = writeln!(out, "\n    {bb}: {{");
        for stmt in &data.statements {
            match &stmt.kind {
                StatementKind::Assign(place, rvalue) => {
                    let _ = writeln!(out, "        {place} = {rvalue};");
                }
                StatementKind::Nop => {
                    let _ = writeln!(out, "        nop;");
                }
            }
        }
        let term = data.terminator();
        let line = match &term.kind {
            TerminatorKind::Goto { target } => format!("goto -> {target}"),
            TerminatorKind::SwitchBool {
                discr,
                true_block,
                false_block,
            } => format!("switch {discr} -> [true: {true_block}, false: {false_block}]"),
            TerminatorKind::Call {
                func,
                args,
                destination,
                target,
            } => {
                let args = args
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("{destination} = fn#{}({args}) -> {target}", func.0)
            }
            TerminatorKind::Return => "return".to_string(),
            TerminatorKind::Unreachable => "unreachable".to_string(),
        };
        let _ = writeln!(out, "        {line};");
        let _ = writeln!(out, "    }}");
    }

    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use crate::compile;

    #[test]
    fn prints_blocks_statements_and_terminators() {
        let prog = compile(
            "fn f(x: i32, flag: bool) -> i32 {
                let mut y = 0;
                if flag { y = x + 1; } else { y = x - 1; }
                return y;
            }",
        )
        .unwrap();
        let s = super::body_to_string(&prog.bodies[0], &prog.structs);
        assert!(s.contains("switch"));
        assert!(s.contains("return"));
        assert!(s.contains("bb0"));
        assert!(s.contains("goto"));
    }

    #[test]
    fn prints_calls_and_borrows() {
        let prog = compile(
            "fn inc(p: &mut i32) { *p = *p + 1; }
             fn g() -> i32 { let mut x = 1; inc(&mut x); return x; }",
        )
        .unwrap();
        let s = super::body_to_string(&prog.bodies[1], &prog.structs);
        assert!(s.contains("fn#0"), "expected a call in:\n{s}");
        assert!(s.contains("&"), "expected a borrow in:\n{s}");
    }
}
