//! Mid-level intermediate representation (MIR) for Rox.
//!
//! Programs are lowered into a control-flow graph of basic blocks, mirroring
//! the representation rustc hands to Flowistry (paper §4.1, Figure 1). Each
//! basic block is a list of [`Statement`]s followed by a [`Terminator`]
//! (goto, boolean switch, call, or return).
//!
//! The central datatype for information flow is [`Place`]: a local variable
//! plus a path of field projections and dereferences, i.e. the place
//! expressions `p` of the paper.

pub mod pretty;

use crate::ast::{BinOp, Mutability, UnOp};
use crate::span::Span;
use crate::types::{FuncId, RegionVid, StructId, Ty};
use std::fmt;

/// A local variable slot in a [`Body`].
///
/// By convention `_0` is the return place and `_1.._arg_count` are the
/// function arguments, exactly as in rustc MIR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Local(pub u32);

impl Local {
    /// The return place `_0`.
    pub const RETURN: Local = Local(0);

    /// Index into `Body::local_decls`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Local {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_{}", self.0)
    }
}

/// A basic block id in a [`Body`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BasicBlock(pub u32);

impl BasicBlock {
    /// The entry block `bb0`.
    pub const START: BasicBlock = BasicBlock(0);

    /// Index into `Body::basic_blocks`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BasicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A position in the CFG: a block and a statement index within it.
///
/// `statement_index == block.statements.len()` denotes the terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Location {
    /// Which basic block.
    pub block: BasicBlock,
    /// Statement index; the terminator sits one past the last statement.
    pub statement_index: usize,
}

impl Location {
    /// The very first location of a body.
    pub const START: Location = Location {
        block: BasicBlock::START,
        statement_index: 0,
    };
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.block, self.statement_index)
    }
}

/// One element of a place's projection path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlaceElem {
    /// Field access `.n` (tuple index or struct field index).
    Field(u32),
    /// Pointer dereference `*`.
    Deref,
}

/// Renders a projection path in the shared text-codec grammar — `*` for a
/// dereference, `.N` for a field — used by both the summary cache codec
/// (`FunctionSummary::encode`) and the network wire protocol. Inverted
/// exactly by [`parse_projection`].
pub fn encode_projection(projection: &[PlaceElem]) -> String {
    let mut out = String::new();
    for elem in projection {
        match elem {
            PlaceElem::Deref => out.push('*'),
            PlaceElem::Field(i) => {
                out.push('.');
                out.push_str(&i.to_string());
            }
        }
    }
    out
}

/// Parses [`encode_projection`]'s output. Returns `None` on any malformed
/// text (codecs treat that as a decode failure, never a panic).
pub fn parse_projection(text: &str) -> Option<Vec<PlaceElem>> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '*' => out.push(PlaceElem::Deref),
            '.' => {
                let mut digits = String::new();
                while chars.peek().is_some_and(char::is_ascii_digit) {
                    digits.push(chars.next()?);
                }
                out.push(PlaceElem::Field(digits.parse().ok()?));
            }
            _ => return None,
        }
    }
    Some(out)
}

/// A place: a local plus a projection path — the `p` of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Place {
    /// The root local variable.
    pub local: Local,
    /// Projection path applied left-to-right.
    pub projection: Vec<PlaceElem>,
}

impl Place {
    /// A place with no projections.
    pub fn from_local(local: Local) -> Self {
        Place {
            local,
            projection: Vec::new(),
        }
    }

    /// The return place `_0`.
    pub fn return_place() -> Self {
        Place::from_local(Local::RETURN)
    }

    /// Extends the place with one more projection element.
    pub fn project(&self, elem: PlaceElem) -> Place {
        let mut projection = self.projection.clone();
        projection.push(elem);
        Place {
            local: self.local,
            projection,
        }
    }

    /// Extends the place with a field projection.
    pub fn field(&self, idx: u32) -> Place {
        self.project(PlaceElem::Field(idx))
    }

    /// Extends the place with a dereference.
    pub fn deref(&self) -> Place {
        self.project(PlaceElem::Deref)
    }

    /// Whether the projection path contains a dereference.
    pub fn has_deref(&self) -> bool {
        self.projection.contains(&PlaceElem::Deref)
    }

    /// Whether `self` is a prefix of `other` (same local, and `other`'s path
    /// starts with `self`'s path). Every place is a prefix of itself.
    pub fn is_prefix_of(&self, other: &Place) -> bool {
        self.local == other.local
            && self.projection.len() <= other.projection.len()
            && self
                .projection
                .iter()
                .zip(&other.projection)
                .all(|(a, b)| a == b)
    }

    /// The paper's *disjointness* (`#`): different locals, or neither path is
    /// a prefix of the other (siblings).
    pub fn is_disjoint_from(&self, other: &Place) -> bool {
        !self.is_prefix_of(other) && !other.is_prefix_of(self)
    }

    /// The paper's *conflict* relation (`⊓`): ancestors and descendants
    /// conflict, siblings do not (§2.1). Mutating a place changes the value
    /// of exactly its conflicting places.
    pub fn conflicts_with(&self, other: &Place) -> bool {
        !self.is_disjoint_from(other)
    }
}

impl From<Local> for Place {
    fn from(local: Local) -> Self {
        Place::from_local(local)
    }
}

impl fmt::Display for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render like rustc: derefs wrap the prefix in parens.
        let mut s = format!("{}", self.local);
        for elem in &self.projection {
            match elem {
                PlaceElem::Field(i) => s = format!("{s}.{i}"),
                PlaceElem::Deref => s = format!("(*{s})"),
            }
        }
        write!(f, "{s}")
    }
}

/// A compile-time constant value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstValue {
    /// `()`
    Unit,
    /// Integer constant.
    Int(i64),
    /// Boolean constant.
    Bool(bool),
}

impl fmt::Display for ConstValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstValue::Unit => write!(f, "()"),
            ConstValue::Int(n) => write!(f, "const {n}"),
            ConstValue::Bool(b) => write!(f, "const {b}"),
        }
    }
}

/// An operand: the argument of an rvalue, call or switch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Copy the value out of a place.
    Copy(Place),
    /// Move the value out of a place (used for unique references).
    Move(Place),
    /// A constant.
    Constant(ConstValue),
}

impl Operand {
    /// The place read by this operand, if any.
    pub fn place(&self) -> Option<&Place> {
        match self {
            Operand::Copy(p) | Operand::Move(p) => Some(p),
            Operand::Constant(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Copy(p) => write!(f, "{p}"),
            Operand::Move(p) => write!(f, "move {p}"),
            Operand::Constant(c) => write!(f, "{c}"),
        }
    }
}

/// Aggregate kinds: tuples and structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateKind {
    /// `(a, b, c)`
    Tuple,
    /// `Name { ... }`
    Struct(StructId),
}

/// Right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Rvalue {
    /// Plain use of an operand.
    Use(Operand),
    /// Binary operation.
    BinaryOp(BinOp, Operand, Operand),
    /// Unary operation.
    UnaryOp(UnOp, Operand),
    /// Borrow expression `&'r [mut] place` — creates a loan for region `r`.
    Ref {
        /// Region (provenance) of the borrow.
        region: RegionVid,
        /// Shared or unique.
        mutbl: Mutability,
        /// The borrowed place.
        place: Place,
    },
    /// Tuple or struct construction.
    Aggregate(AggregateKind, Vec<Operand>),
}

impl Rvalue {
    /// All operands read by this rvalue.
    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            Rvalue::Use(o) | Rvalue::UnaryOp(_, o) => vec![o],
            Rvalue::BinaryOp(_, a, b) => vec![a, b],
            Rvalue::Ref { .. } => vec![],
            Rvalue::Aggregate(_, ops) => ops.iter().collect(),
        }
    }
}

impl fmt::Display for Rvalue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rvalue::Use(o) => write!(f, "{o}"),
            Rvalue::BinaryOp(op, a, b) => write!(f, "{a} {op} {b}"),
            Rvalue::UnaryOp(op, a) => write!(f, "{op}{a}"),
            Rvalue::Ref {
                region,
                mutbl,
                place,
            } => {
                if mutbl.is_mut() {
                    write!(f, "&{region} mut {place}")
                } else {
                    write!(f, "&{region} {place}")
                }
            }
            Rvalue::Aggregate(kind, ops) => {
                let inner = ops
                    .iter()
                    .map(|o| o.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                match kind {
                    AggregateKind::Tuple => write!(f, "({inner})"),
                    AggregateKind::Struct(sid) => write!(f, "struct#{}({inner})", sid.0),
                }
            }
        }
    }
}

/// A MIR statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// What the statement does.
    pub kind: StatementKind,
    /// Source span the statement was lowered from.
    pub span: Span,
}

/// The kinds of MIR statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatementKind {
    /// `place = rvalue`
    Assign(Place, Rvalue),
    /// No operation (used to keep locations stable when statements are
    /// removed or synthesized).
    Nop,
}

/// A MIR terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Terminator {
    /// What the terminator does.
    pub kind: TerminatorKind,
    /// Source span the terminator was lowered from.
    pub span: Span,
}

/// The kinds of MIR terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TerminatorKind {
    /// Unconditional jump.
    Goto {
        /// Jump target.
        target: BasicBlock,
    },
    /// Two-way branch on a boolean operand.
    SwitchBool {
        /// The discriminant.
        discr: Operand,
        /// Block taken when the discriminant is `true`.
        true_block: BasicBlock,
        /// Block taken when the discriminant is `false`.
        false_block: BasicBlock,
    },
    /// Function call `destination = func(args)`, then jump to `target`.
    Call {
        /// Callee.
        func: FuncId,
        /// Actual arguments.
        args: Vec<Operand>,
        /// Where the return value is stored.
        destination: Place,
        /// Block to continue at after the call returns.
        target: BasicBlock,
    },
    /// Return from the function; the return value lives in `_0`.
    Return,
    /// An unreachable point (e.g. after an infinite loop with no break).
    Unreachable,
}

impl TerminatorKind {
    /// The CFG successors of this terminator.
    pub fn successors(&self) -> Vec<BasicBlock> {
        match self {
            TerminatorKind::Goto { target } => vec![*target],
            TerminatorKind::SwitchBool {
                true_block,
                false_block,
                ..
            } => vec![*true_block, *false_block],
            TerminatorKind::Call { target, .. } => vec![*target],
            TerminatorKind::Return | TerminatorKind::Unreachable => vec![],
        }
    }
}

/// One basic block: straight-line statements plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlockData {
    /// The statements, executed in order.
    pub statements: Vec<Statement>,
    /// The terminator. `None` only transiently during lowering.
    pub terminator: Option<Terminator>,
}

impl BasicBlockData {
    /// Creates an empty block with no terminator yet.
    pub fn new() -> Self {
        BasicBlockData {
            statements: Vec::new(),
            terminator: None,
        }
    }

    /// The block's terminator.
    ///
    /// # Panics
    ///
    /// Panics if lowering has not yet set a terminator.
    pub fn terminator(&self) -> &Terminator {
        self.terminator
            .as_ref()
            .expect("basic block has no terminator")
    }
}

impl Default for BasicBlockData {
    fn default() -> Self {
        Self::new()
    }
}

/// Declaration of one local variable slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalDecl {
    /// The user-visible name, if this local corresponds to a source variable.
    pub name: Option<String>,
    /// The local's type (regions are body region variables).
    pub ty: Ty,
    /// Whether the local may be reassigned / mutably borrowed.
    pub mutable: bool,
    /// Source span of the declaration.
    pub span: Span,
}

/// Metadata about one region (provenance) variable of a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionData {
    /// Name of the lifetime parameter if this is a universal region.
    pub name: Option<String>,
    /// Universal regions come from the function signature; existential
    /// regions are created for borrows and local types inside the body.
    pub is_universal: bool,
}

/// An outlives constraint `longer :> shorter` between two regions of a body.
///
/// Following the paper (§2.2 step 3 and §4.2), such a constraint makes the
/// loans of `longer` flow into the loan set of `shorter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutlivesConstraint {
    /// The region required to live at least as long as `shorter`.
    pub longer: RegionVid,
    /// The region being outlived.
    pub shorter: RegionVid,
}

/// The MIR body of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Body {
    /// Function name.
    pub name: String,
    /// Id of this function within its program.
    pub func_id: FuncId,
    /// Number of arguments; locals `_1..=_arg_count` are the arguments.
    pub arg_count: usize,
    /// All local variable declarations, `_0` first.
    pub local_decls: Vec<LocalDecl>,
    /// All basic blocks, entry block first.
    pub basic_blocks: Vec<BasicBlockData>,
    /// Region metadata; indices are [`RegionVid`]s.
    pub regions: Vec<RegionData>,
    /// Outlives constraints collected by the region analysis.
    pub outlives: Vec<OutlivesConstraint>,
    /// Locations of `Call` terminators whose `let` binding carried a
    /// `#[declassify]` attribute. The information flow analysis ignores
    /// these; the IFC policy layer relabels their results to lattice bottom.
    pub declassified_calls: Vec<Location>,
    /// Module membership from a `#[module(M)]` attribute; module-level lint
    /// and policy defaults key off this.
    pub module: Option<String>,
    /// Span of the whole function.
    pub span: Span,
}

impl Body {
    /// The declaration of `local`.
    pub fn local_decl(&self, local: Local) -> &LocalDecl {
        &self.local_decls[local.index()]
    }

    /// The argument locals `_1..=_arg_count`.
    pub fn args(&self) -> impl Iterator<Item = Local> + '_ {
        (1..=self.arg_count).map(|i| Local(i as u32))
    }

    /// The block data for `bb`.
    pub fn block(&self, bb: BasicBlock) -> &BasicBlockData {
        &self.basic_blocks[bb.index()]
    }

    /// All basic block ids in order.
    pub fn block_ids(&self) -> impl Iterator<Item = BasicBlock> {
        (0..self.basic_blocks.len() as u32).map(BasicBlock)
    }

    /// CFG successors of `bb`.
    pub fn successors(&self, bb: BasicBlock) -> Vec<BasicBlock> {
        self.block(bb).terminator().kind.successors()
    }

    /// Computes the predecessor map of the CFG.
    pub fn predecessors(&self) -> Vec<Vec<BasicBlock>> {
        let mut preds = vec![Vec::new(); self.basic_blocks.len()];
        for bb in self.block_ids() {
            for succ in self.successors(bb) {
                preds[succ.index()].push(bb);
            }
        }
        preds
    }

    /// All locations in the body, in block order then statement order
    /// (terminator locations included).
    pub fn all_locations(&self) -> Vec<Location> {
        let mut out = Vec::new();
        for bb in self.block_ids() {
            let n = self.block(bb).statements.len();
            for i in 0..=n {
                out.push(Location {
                    block: bb,
                    statement_index: i,
                });
            }
        }
        out
    }

    /// The statement at `loc`, or `None` if `loc` is a terminator location.
    pub fn stmt_at(&self, loc: Location) -> Option<&Statement> {
        self.block(loc.block).statements.get(loc.statement_index)
    }

    /// Whether `loc` points at a terminator.
    pub fn is_terminator_loc(&self, loc: Location) -> bool {
        loc.statement_index == self.block(loc.block).statements.len()
    }

    /// Locations of all `Return` terminators.
    pub fn return_locations(&self) -> Vec<Location> {
        self.block_ids()
            .filter(|bb| matches!(self.block(*bb).terminator().kind, TerminatorKind::Return))
            .map(|bb| Location {
                block: bb,
                statement_index: self.block(bb).statements.len(),
            })
            .collect()
    }

    /// Total number of statements plus terminators — the "MIR instructions"
    /// count reported in Table 1 of the paper.
    pub fn instruction_count(&self) -> usize {
        self.basic_blocks
            .iter()
            .map(|b| b.statements.len() + 1)
            .sum()
    }

    /// The type of a place, resolved through projections, or `None` if the
    /// place is not well-typed for this body (projection of a non-aggregate,
    /// deref of a non-reference, unknown field, out-of-range local).
    pub fn try_place_ty(&self, place: &Place, structs: &crate::types::StructTable) -> Option<Ty> {
        let mut ty = self.local_decls.get(place.local.index())?.ty.clone();
        for elem in &place.projection {
            ty = match (elem, &ty) {
                (PlaceElem::Deref, Ty::Ref(_, _, inner)) => (**inner).clone(),
                (PlaceElem::Field(i), t) => t.field_ty(*i, structs)?,
                _ => return None,
            };
        }
        Some(ty)
    }

    /// The type of a place, resolved through projections.
    ///
    /// # Panics
    ///
    /// Panics if the place is not well-typed for this body; see
    /// [`Body::try_place_ty`] for the non-panicking variant.
    pub fn place_ty(&self, place: &Place, structs: &crate::types::StructTable) -> Ty {
        self.try_place_ty(place, structs)
            .unwrap_or_else(|| panic!("ill-typed place {place} in body of `{}`", self.name))
    }

    /// Number of user-visible variables (locals with names). This is the
    /// "# Vars" metric of Table 1.
    pub fn user_var_count(&self) -> usize {
        self.local_decls.iter().filter(|d| d.name.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(local: u32, proj: &[PlaceElem]) -> Place {
        Place {
            local: Local(local),
            projection: proj.to_vec(),
        }
    }

    #[test]
    fn prefix_and_conflicts() {
        use PlaceElem::*;
        let t = place(1, &[]);
        let t0 = place(1, &[Field(0)]);
        let t1 = place(1, &[Field(1)]);
        let t10 = place(1, &[Field(1), Field(0)]);
        let u = place(2, &[]);

        assert!(t.is_prefix_of(&t1));
        assert!(!t1.is_prefix_of(&t));
        assert!(t.is_prefix_of(&t));

        // The paper's example: t.1 conflicts with t and t.1, not t.0.
        assert!(t1.conflicts_with(&t));
        assert!(t1.conflicts_with(&t1));
        assert!(!t1.conflicts_with(&t0));
        assert!(t1.conflicts_with(&t10));
        assert!(!t1.conflicts_with(&u));
        assert!(t0.is_disjoint_from(&t1));
    }

    #[test]
    fn conflict_is_symmetric() {
        use PlaceElem::*;
        let a = place(1, &[Field(0)]);
        let b = place(1, &[Field(0), Field(2)]);
        assert_eq!(a.conflicts_with(&b), b.conflicts_with(&a));
    }

    #[test]
    fn deref_places() {
        use PlaceElem::*;
        let p = place(3, &[Deref, Field(1)]);
        assert!(p.has_deref());
        assert!(!place(3, &[Field(1)]).has_deref());
        assert_eq!(p.to_string(), "(*_3).1");
    }

    #[test]
    fn place_builders() {
        let p = Place::from_local(Local(2)).field(0).deref().field(3);
        assert_eq!(
            p.projection,
            vec![PlaceElem::Field(0), PlaceElem::Deref, PlaceElem::Field(3)]
        );
        let q: Place = Local(5).into();
        assert_eq!(q, Place::from_local(Local(5)));
    }

    #[test]
    fn terminator_successors() {
        let t = TerminatorKind::SwitchBool {
            discr: Operand::Constant(ConstValue::Bool(true)),
            true_block: BasicBlock(1),
            false_block: BasicBlock(2),
        };
        assert_eq!(t.successors(), vec![BasicBlock(1), BasicBlock(2)]);
        assert!(TerminatorKind::Return.successors().is_empty());
        assert_eq!(
            TerminatorKind::Goto {
                target: BasicBlock(7)
            }
            .successors(),
            vec![BasicBlock(7)]
        );
    }

    #[test]
    fn operand_place() {
        let p = place(1, &[]);
        assert_eq!(Operand::Copy(p.clone()).place(), Some(&p));
        assert_eq!(Operand::Move(p.clone()).place(), Some(&p));
        assert_eq!(Operand::Constant(ConstValue::Int(1)).place(), None);
    }

    #[test]
    fn rvalue_operands() {
        let a = Operand::Constant(ConstValue::Int(1));
        let b = Operand::Copy(place(1, &[]));
        assert_eq!(
            Rvalue::BinaryOp(BinOp::Add, a.clone(), b.clone())
                .operands()
                .len(),
            2
        );
        assert_eq!(Rvalue::Use(a.clone()).operands().len(), 1);
        assert!(Rvalue::Ref {
            region: RegionVid(0),
            mutbl: Mutability::Mut,
            place: place(1, &[])
        }
        .operands()
        .is_empty());
        assert_eq!(
            Rvalue::Aggregate(AggregateKind::Tuple, vec![a, b])
                .operands()
                .len(),
            2
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Local(3).to_string(), "_3");
        assert_eq!(BasicBlock(2).to_string(), "bb2");
        assert_eq!(
            Location {
                block: BasicBlock(1),
                statement_index: 4
            }
            .to_string(),
            "bb1[4]"
        );
        assert_eq!(ConstValue::Int(7).to_string(), "const 7");
        assert_eq!(
            Rvalue::Ref {
                region: RegionVid(2),
                mutbl: Mutability::Shared,
                place: place(1, &[PlaceElem::Field(0)])
            }
            .to_string(),
            "&'2 _1.0"
        );
    }
}
