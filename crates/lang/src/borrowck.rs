//! A simplified borrow (conflict) checker for Rox.
//!
//! The information flow analysis itself only needs loan sets; this module
//! exists because the paper's soundness argument assumes analyzed programs
//! are *ownership-safe* (data is never simultaneously aliased and mutated).
//! The checker enforces an NLL-like discipline:
//!
//! * a loan is **live** from its creation until the last use of any local
//!   whose type may carry it (computed via local liveness plus region
//!   reachability over the outlives constraints);
//! * while a unique loan of `p` is live, `p`'s conflicting places may not be
//!   read, written, or borrowed (except through the loan itself);
//! * while a shared loan of `p` is live, `p`'s conflicting places may not be
//!   written or mutably borrowed.
//!
//! Accesses whose path passes through a dereference are treated as accesses
//! *through* a reference and are not re-checked against other loans; this is
//! a deliberate simplification (it never rejects valid programs, at the cost
//! of missing a small class of invalid ones — see DESIGN.md).

use crate::ast::Mutability;
use crate::mir::*;
use crate::span::Diagnostic;
use crate::types::RegionVid;
use std::collections::{HashMap, HashSet};

/// A loan: a borrow of `place` with a given mutability and region, created
/// at `location`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loan {
    /// Where the borrow statement sits.
    pub location: Location,
    /// The borrowed place.
    pub place: Place,
    /// Shared or unique.
    pub mutbl: Mutability,
    /// The borrow's region.
    pub region: RegionVid,
}

/// Checks one body and returns all conflict diagnostics found.
pub fn check_body(body: &Body) -> Vec<Diagnostic> {
    let loans = collect_loans(body);
    if loans.is_empty() {
        return Vec::new();
    }
    let live_locals = liveness(body);
    let reach = region_reachability(body);
    let mut errors = Vec::new();

    for bb in body.block_ids() {
        let data = body.block(bb);
        for (i, stmt) in data.statements.iter().enumerate() {
            let loc = Location {
                block: bb,
                statement_index: i,
            };
            let live = live_loans(body, &loans, &live_locals, &reach, loc);
            if let StatementKind::Assign(place, rvalue) = &stmt.kind {
                check_write(body, place, &live, loc, stmt.span, &mut errors);
                match rvalue {
                    Rvalue::Ref {
                        mutbl,
                        place: borrowed,
                        ..
                    } => {
                        check_borrow(body, borrowed, *mutbl, &live, loc, stmt.span, &mut errors);
                    }
                    _ => {
                        for op in rvalue.operands() {
                            if let Some(p) = op.place() {
                                check_read(body, p, &live, loc, stmt.span, &mut errors);
                            }
                        }
                    }
                }
            }
        }
        let loc = Location {
            block: bb,
            statement_index: data.statements.len(),
        };
        let live = live_loans(body, &loans, &live_locals, &reach, loc);
        match &data.terminator().kind {
            TerminatorKind::Call {
                args, destination, ..
            } => {
                for op in args {
                    if let Some(p) = op.place() {
                        check_read(body, p, &live, loc, data.terminator().span, &mut errors);
                    }
                }
                check_write(
                    body,
                    destination,
                    &live,
                    loc,
                    data.terminator().span,
                    &mut errors,
                );
            }
            TerminatorKind::SwitchBool { discr, .. } => {
                if let Some(p) = discr.place() {
                    check_read(body, p, &live, loc, data.terminator().span, &mut errors);
                }
            }
            _ => {}
        }
    }
    errors
}

/// All loans (borrow statements) in the body.
pub fn collect_loans(body: &Body) -> Vec<Loan> {
    let mut loans = Vec::new();
    for bb in body.block_ids() {
        for (i, stmt) in body.block(bb).statements.iter().enumerate() {
            if let StatementKind::Assign(
                _,
                Rvalue::Ref {
                    region,
                    mutbl,
                    place,
                },
            ) = &stmt.kind
            {
                loans.push(Loan {
                    location: Location {
                        block: bb,
                        statement_index: i,
                    },
                    place: place.clone(),
                    mutbl: *mutbl,
                    region: *region,
                });
            }
        }
    }
    loans
}

fn check_write(
    body: &Body,
    place: &Place,
    live: &[&Loan],
    loc: Location,
    span: crate::span::Span,
    errors: &mut Vec<Diagnostic>,
) {
    if place.has_deref() {
        return; // access through a reference
    }
    for loan in live {
        if loan.location == loc {
            continue;
        }
        if !loan.place.has_deref() && loan.place.conflicts_with(place) {
            errors.push(Diagnostic::error(
                format!(
                    "cannot assign to `{place}` in `{}` because it is borrowed at {}",
                    body.name, loan.location
                ),
                span,
            ));
        }
    }
}

fn check_read(
    body: &Body,
    place: &Place,
    live: &[&Loan],
    loc: Location,
    span: crate::span::Span,
    errors: &mut Vec<Diagnostic>,
) {
    if place.has_deref() {
        return;
    }
    for loan in live {
        if loan.location == loc || !loan.mutbl.is_mut() {
            continue;
        }
        if !loan.place.has_deref() && loan.place.conflicts_with(place) {
            errors.push(Diagnostic::error(
                format!(
                    "cannot read `{place}` in `{}` because it is mutably borrowed at {}",
                    body.name, loan.location
                ),
                span,
            ));
        }
    }
}

fn check_borrow(
    body: &Body,
    place: &Place,
    mutbl: Mutability,
    live: &[&Loan],
    loc: Location,
    span: crate::span::Span,
    errors: &mut Vec<Diagnostic>,
) {
    if place.has_deref() {
        return; // reborrow through an existing reference
    }
    for loan in live {
        if loan.location == loc || loan.place.has_deref() {
            continue;
        }
        let conflict = loan.place.conflicts_with(place);
        if conflict && (mutbl.is_mut() || loan.mutbl.is_mut()) {
            errors.push(Diagnostic::error(
                format!(
                    "cannot borrow `{place}` as {} in `{}` because a conflicting borrow exists at {}",
                    if mutbl.is_mut() { "unique" } else { "shared" },
                    body.name,
                    loan.location
                ),
                span,
            ));
        }
    }
}

/// Loans live at `loc`: the loan's region reaches a region mentioned in the
/// type of some local that is live at `loc`, or the loan was created at an
/// earlier statement of the same block and its value has not yet died.
fn live_loans<'a>(
    body: &Body,
    loans: &'a [Loan],
    live_locals: &HashMap<Location, HashSet<Local>>,
    reach: &HashMap<RegionVid, HashSet<RegionVid>>,
    loc: Location,
) -> Vec<&'a Loan> {
    let live = match live_locals.get(&loc) {
        Some(set) => set,
        None => return Vec::new(),
    };
    // Regions mentioned by live locals.
    let mut live_regions: HashSet<RegionVid> = HashSet::new();
    for local in live {
        for r in body.local_decl(*local).ty.regions() {
            live_regions.insert(r);
        }
    }
    loans
        .iter()
        .filter(|loan| {
            reach
                .get(&loan.region)
                .map(|reached| reached.iter().any(|r| live_regions.contains(r)))
                .unwrap_or(false)
        })
        .collect()
}

/// For each region, the set of regions its loans flow into (including
/// itself): reachability over `longer :> shorter` edges.
fn region_reachability(body: &Body) -> HashMap<RegionVid, HashSet<RegionVid>> {
    let mut edges: HashMap<RegionVid, Vec<RegionVid>> = HashMap::new();
    for c in &body.outlives {
        edges.entry(c.longer).or_default().push(c.shorter);
    }
    let mut out = HashMap::new();
    for i in 0..body.regions.len() {
        let start = RegionVid(i as u32);
        let mut seen = HashSet::new();
        let mut stack = vec![start];
        while let Some(r) = stack.pop() {
            if seen.insert(r) {
                if let Some(next) = edges.get(&r) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        out.insert(start, seen);
    }
    out
}

/// Per-location live locals (backward may-analysis).
fn liveness(body: &Body) -> HashMap<Location, HashSet<Local>> {
    // live-out of each block, iterated to fixpoint.
    let n = body.basic_blocks.len();
    let mut live_in: Vec<HashSet<Local>> = vec![HashSet::new(); n];
    let preds = body.predecessors();

    // Transfer over one block: returns the live set before the block given
    // the live set after it, and records per-location sets.
    fn block_transfer(
        body: &Body,
        bb: BasicBlock,
        mut live: HashSet<Local>,
        record: Option<&mut HashMap<Location, HashSet<Local>>>,
    ) -> HashSet<Local> {
        let data = body.block(bb);
        let mut per_loc: Vec<(Location, HashSet<Local>)> = Vec::new();

        // Terminator first (we walk backwards).
        let term_loc = Location {
            block: bb,
            statement_index: data.statements.len(),
        };
        match &data.terminator().kind {
            TerminatorKind::Call {
                args, destination, ..
            } => {
                if destination.projection.is_empty() {
                    live.remove(&destination.local);
                } else {
                    live.insert(destination.local);
                }
                for op in args {
                    if let Some(p) = op.place() {
                        live.insert(p.local);
                    }
                }
            }
            TerminatorKind::SwitchBool { discr, .. } => {
                if let Some(p) = discr.place() {
                    live.insert(p.local);
                }
            }
            TerminatorKind::Return => {
                live.insert(Local::RETURN);
            }
            _ => {}
        }
        per_loc.push((term_loc, live.clone()));

        for (i, stmt) in data.statements.iter().enumerate().rev() {
            if let StatementKind::Assign(place, rvalue) = &stmt.kind {
                if place.projection.is_empty() {
                    live.remove(&place.local);
                } else {
                    live.insert(place.local);
                }
                match rvalue {
                    Rvalue::Ref { place: p, .. } => {
                        live.insert(p.local);
                    }
                    _ => {
                        for op in rvalue.operands() {
                            if let Some(p) = op.place() {
                                live.insert(p.local);
                            }
                        }
                    }
                }
            }
            per_loc.push((
                Location {
                    block: bb,
                    statement_index: i,
                },
                live.clone(),
            ));
        }

        if let Some(record) = record {
            for (loc, set) in per_loc {
                record.insert(loc, set);
            }
        }
        live
    }

    // Fixpoint over blocks.
    let mut changed = true;
    while changed {
        changed = false;
        for bb in body.block_ids().collect::<Vec<_>>().into_iter().rev() {
            // live-out = union of live-in of successors
            let mut live_out = HashSet::new();
            for succ in body.successors(bb) {
                live_out.extend(live_in[succ.index()].iter().copied());
            }
            let new_in = block_transfer(body, bb, live_out, None);
            if new_in != live_in[bb.index()] {
                live_in[bb.index()] = new_in;
                changed = true;
            }
        }
    }
    // A location's live set is the set *after* that instruction has been
    // reached going backwards from the block end; record per-location data.
    let mut per_location = HashMap::new();
    for bb in body.block_ids() {
        let mut live_out = HashSet::new();
        for succ in body.successors(bb) {
            live_out.extend(live_in[succ.index()].iter().copied());
        }
        block_transfer(body, bb, live_out, Some(&mut per_location));
        // preds is only used to keep the analysis honest about reachability.
        let _ = &preds;
    }
    per_location
}

#[cfg(test)]
mod tests {
    use crate::compile;

    fn errors(src: &str) -> Vec<String> {
        let prog = compile(src).expect("compile failure");
        prog.borrow_errors
            .iter()
            .map(|d| d.message.clone())
            .collect()
    }

    #[test]
    fn sequential_borrows_are_fine() {
        let errs = errors("fn f() { let mut x = 1; let r = &mut x; *r = 2; let v = x; }");
        assert!(errs.is_empty(), "unexpected errors: {errs:?}");
    }

    #[test]
    fn mutating_while_borrowed_is_an_error() {
        let errs = errors("fn f() -> i32 { let mut x = 1; let r = &x; x = 2; return *r; }");
        assert!(!errs.is_empty());
        assert!(errs[0].contains("borrowed"));
    }

    #[test]
    fn reading_while_mutably_borrowed_is_an_error() {
        let errs =
            errors("fn f() -> i32 { let mut x = 1; let r = &mut x; let y = x; *r = 2; return y; }");
        assert!(!errs.is_empty());
    }

    #[test]
    fn two_unique_borrows_conflict() {
        let errs = errors(
            "fn f() -> i32 { let mut x = 1; let a = &mut x; let b = &mut x; *a = 2; *b = 3; return x; }",
        );
        assert!(!errs.is_empty());
    }

    #[test]
    fn shared_borrows_can_coexist() {
        let errs = errors("fn f() -> i32 { let x = 1; let a = &x; let b = &x; return *a + *b; }");
        assert!(errs.is_empty(), "unexpected errors: {errs:?}");
    }

    #[test]
    fn disjoint_field_borrows_do_not_conflict() {
        let errs = errors(
            "fn f() -> i32 { let mut t = (1, 2); let a = &mut t.0; let b = &mut t.1; *a = 3; *b = 4; return t.0; }",
        );
        assert!(errs.is_empty(), "unexpected errors: {errs:?}");
    }

    #[test]
    fn reborrow_through_reference_is_allowed() {
        let errs =
            errors("fn f() { let mut x = (0, 0); let y = &mut x; let z = &mut (*y).1; *z = 1; }");
        assert!(errs.is_empty(), "unexpected errors: {errs:?}");
    }

    #[test]
    fn borrow_ending_before_mutation_is_allowed() {
        let errs =
            errors("fn f() -> i32 { let mut x = 1; let r = &x; let v = *r; x = 2; return v + x; }");
        assert!(errs.is_empty(), "unexpected errors: {errs:?}");
    }

    #[test]
    fn mutation_through_parameter_reference_is_allowed() {
        let errs = errors("fn f(p: &mut i32) { *p = *p + 1; }");
        assert!(errs.is_empty(), "unexpected errors: {errs:?}");
    }
}
