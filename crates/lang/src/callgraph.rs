//! Call-graph extraction and bottom-up scheduling.
//!
//! The incremental analysis engine exploits the paper's modularity result:
//! a function's information flow summary depends only on its own body and
//! the summaries of its callees. Scheduling summary computation therefore
//! follows the call graph bottom-up — and independent functions in the same
//! level can be analyzed in parallel.
//!
//! [`CallGraph::extract`] reads the `Call` terminators of every MIR body;
//! [`CallGraph::sccs`] condenses recursion cycles with Tarjan's algorithm;
//! [`CallGraph::schedule_levels`] groups the condensation into levels such
//! that every callee of a level-`n` component lives in a level `< n`.

use crate::mir::TerminatorKind;
use crate::types::FuncId;
use crate::CompiledProgram;
use std::collections::BTreeSet;

/// The call graph of one [`CompiledProgram`], with its strongly connected
/// components precomputed.
#[derive(Debug, Clone)]
pub struct CallGraph {
    callees: Vec<BTreeSet<FuncId>>,
    callers: Vec<BTreeSet<FuncId>>,
    /// SCCs in *reverse topological* order: every edge leaves a component
    /// with a higher index, so index 0 only has calls into itself.
    sccs: Vec<Vec<FuncId>>,
    scc_of: Vec<usize>,
    /// Condensation edges: for each SCC, the set of *other* SCCs its members
    /// call into (self-edges within a component are dropped).
    scc_callees: Vec<BTreeSet<usize>>,
    /// Reverse condensation edges: for each SCC, the SCCs that call into it.
    scc_callers: Vec<BTreeSet<usize>>,
}

impl CallGraph {
    /// Reads the call graph out of `program`'s MIR bodies.
    pub fn extract(program: &CompiledProgram) -> CallGraph {
        let n = program.bodies.len();
        let mut callees = vec![BTreeSet::new(); n];
        let mut callers = vec![BTreeSet::new(); n];
        for (idx, body) in program.bodies.iter().enumerate() {
            let caller = FuncId(idx as u32);
            for bb in body.block_ids() {
                if let TerminatorKind::Call { func, .. } = &body.block(bb).terminator().kind {
                    callees[idx].insert(*func);
                    callers[func.0 as usize].insert(caller);
                }
            }
        }
        let (sccs, scc_of) = tarjan_sccs(&callees);
        let mut scc_callees = vec![BTreeSet::new(); sccs.len()];
        let mut scc_callers = vec![BTreeSet::new(); sccs.len()];
        for (idx, members) in sccs.iter().enumerate() {
            for &f in members {
                for &callee in &callees[f.0 as usize] {
                    let callee_scc = scc_of[callee.0 as usize];
                    if callee_scc != idx {
                        scc_callees[idx].insert(callee_scc);
                        scc_callers[callee_scc].insert(idx);
                    }
                }
            }
        }
        CallGraph {
            callees,
            callers,
            sccs,
            scc_of,
            scc_callees,
            scc_callers,
        }
    }

    /// Number of functions in the graph.
    pub fn len(&self) -> usize {
        self.callees.len()
    }

    /// Whether the graph has no functions.
    pub fn is_empty(&self) -> bool {
        self.callees.is_empty()
    }

    /// Functions directly called by `func`.
    pub fn callees(&self, func: FuncId) -> &BTreeSet<FuncId> {
        &self.callees[func.0 as usize]
    }

    /// Functions that directly call `func`.
    pub fn callers(&self, func: FuncId) -> &BTreeSet<FuncId> {
        &self.callers[func.0 as usize]
    }

    /// The strongly connected components in reverse topological order
    /// (callees before callers). A function outside every cycle forms a
    /// singleton component.
    pub fn sccs(&self) -> &[Vec<FuncId>] {
        &self.sccs
    }

    /// Index (into [`CallGraph::sccs`]) of the component containing `func`.
    pub fn scc_index(&self, func: FuncId) -> usize {
        self.scc_of[func.0 as usize]
    }

    /// The other members of `func`'s component, i.e. the functions `func` is
    /// mutually recursive with (including itself only if it calls itself).
    pub fn scc_members(&self, func: FuncId) -> &[FuncId] {
        &self.sccs[self.scc_of[func.0 as usize]]
    }

    /// Whether `func` participates in any recursion (self-loop or cycle).
    pub fn is_recursive(&self, func: FuncId) -> bool {
        self.scc_members(func).len() > 1 || self.callees(func).contains(&func)
    }

    /// Condensation edges out of component `scc`: the indices of the other
    /// components its members call into. Acyclic by construction.
    pub fn scc_callees(&self, scc: usize) -> &BTreeSet<usize> {
        &self.scc_callees[scc]
    }

    /// Reverse condensation edges: the components that call into `scc`.
    /// These are the components whose dependency counts a scheduler must
    /// decrement when `scc` finishes.
    pub fn scc_callers(&self, scc: usize) -> &BTreeSet<usize> {
        &self.scc_callers[scc]
    }

    /// For every component, the number of distinct callee components it
    /// depends on — the initial values of a dependency-counting scheduler:
    /// a component is ready exactly when its count reaches zero.
    pub fn scc_dependency_counts(&self) -> Vec<usize> {
        self.scc_callees.iter().map(BTreeSet::len).collect()
    }

    /// The length of the condensation's critical path: the number of
    /// sequential scheduling steps no parallel schedule can avoid. Equals
    /// the number of levels [`CallGraph::schedule_levels`] produces.
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![0usize; self.sccs.len()];
        for idx in 0..self.sccs.len() {
            let d = self.scc_callees[idx]
                .iter()
                .map(|&c| depth[c] + 1)
                .max()
                .unwrap_or(0);
            depth[idx] = d;
        }
        if self.sccs.is_empty() {
            0
        } else {
            depth.iter().copied().max().unwrap_or(0) + 1
        }
    }

    /// Groups SCC indices into parallelizable levels: all callees of a
    /// component in level `n` live in levels `< n`. Level 0 holds the leaf
    /// functions.
    pub fn schedule_levels(&self) -> Vec<Vec<usize>> {
        let mut depth = vec![0usize; self.sccs.len()];
        // Components are in reverse topological order, so a single pass that
        // visits callees first (higher scc index… no: reverse topological
        // means edges point to *lower* indices is not guaranteed by Tarjan;
        // Tarjan emits components in reverse topological order of the
        // condensation, i.e. callees receive *smaller* indices here because
        // our edges go caller → callee and Tarjan finishes callees first).
        for (idx, members) in self.sccs.iter().enumerate() {
            let mut d = 0;
            for &f in members {
                for &callee in self.callees(f) {
                    let callee_scc = self.scc_of[callee.0 as usize];
                    if callee_scc != idx {
                        d = d.max(depth[callee_scc] + 1);
                    }
                }
            }
            depth[idx] = d;
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let mut levels = vec![Vec::new(); max_depth + 1];
        for (idx, &d) in depth.iter().enumerate() {
            levels[d].push(idx);
        }
        levels.retain(|l| !l.is_empty());
        levels
    }

    /// Every function whose analysis (transitively) depends on `func`:
    /// `func` itself, its callers, their callers, and so on. This is the
    /// invalidation set when `func`'s body changes.
    pub fn transitive_callers(&self, func: FuncId) -> BTreeSet<FuncId> {
        let mut out = BTreeSet::new();
        let mut stack = vec![func];
        while let Some(f) = stack.pop() {
            if out.insert(f) {
                stack.extend(self.callers(f).iter().copied());
            }
        }
        out
    }
}

/// Iterative Tarjan SCC over the callee adjacency lists. Returns the
/// components in reverse topological order plus the component index of every
/// function.
fn tarjan_sccs(callees: &[BTreeSet<FuncId>]) -> (Vec<Vec<FuncId>>, Vec<usize>) {
    let n = callees.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<FuncId>> = Vec::new();
    let mut scc_of = vec![0usize; n];

    // Explicit DFS frame: (node, iterator position into its callee list).
    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        let mut frames = vec![Frame::Enter(root)];
        while let Some(frame) = frames.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    frames.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, child_pos) => {
                    let succs: Vec<usize> = callees[v].iter().map(|f| f.0 as usize).collect();
                    if child_pos > 0 {
                        // We just returned from the previous child.
                        let w = succs[child_pos - 1];
                        lowlink[v] = lowlink[v].min(lowlink[w]);
                    }
                    let mut advanced = false;
                    for (pos, &w) in succs.iter().enumerate().skip(child_pos) {
                        if index[w] == UNVISITED {
                            frames.push(Frame::Resume(v, pos + 1));
                            frames.push(Frame::Enter(w));
                            advanced = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if advanced {
                        continue;
                    }
                    if lowlink[v] == index[v] {
                        let mut component = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            scc_of[w] = sccs.len();
                            component.push(FuncId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        component.sort();
                        sccs.push(component);
                    }
                }
            }
        }
    }

    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn graph(src: &str) -> (CompiledProgram, CallGraph) {
        let prog = compile(src).expect("test program compiles");
        let cg = CallGraph::extract(&prog);
        (prog, cg)
    }

    const CHAIN: &str = "
        fn leaf(x: i32) -> i32 { return x + 1; }
        fn mid(x: i32) -> i32 { return leaf(x) + leaf(x + 1); }
        fn top(x: i32) -> i32 { return mid(x); }
    ";

    #[test]
    fn edges_follow_call_terminators() {
        let (prog, cg) = graph(CHAIN);
        let leaf = prog.func_id("leaf").unwrap();
        let mid = prog.func_id("mid").unwrap();
        let top = prog.func_id("top").unwrap();
        assert_eq!(cg.len(), 3);
        assert!(!cg.is_empty());
        assert!(cg.callees(mid).contains(&leaf));
        assert!(cg.callees(top).contains(&mid));
        assert!(cg.callees(leaf).is_empty());
        assert!(cg.callers(leaf).contains(&mid));
        assert!(cg.callers(top).is_empty());
    }

    #[test]
    fn levels_are_bottom_up() {
        let (prog, cg) = graph(CHAIN);
        let levels = cg.schedule_levels();
        assert_eq!(levels.len(), 3);
        let scc_at = |level: usize, name: &str| {
            let f = prog.func_id(name).unwrap();
            levels[level].contains(&cg.scc_index(f))
        };
        assert!(scc_at(0, "leaf"));
        assert!(scc_at(1, "mid"));
        assert!(scc_at(2, "top"));
    }

    #[test]
    fn recursion_collapses_into_one_component() {
        let (prog, cg) = graph(
            "fn even(n: i32) -> bool { if n == 0 { return true; } return odd(n - 1); }
             fn odd(n: i32) -> bool { if n == 0 { return false; } return even(n - 1); }
             fn driver(n: i32) -> bool { return even(n); }",
        );
        let even = prog.func_id("even").unwrap();
        let odd = prog.func_id("odd").unwrap();
        let driver = prog.func_id("driver").unwrap();
        assert_eq!(cg.scc_index(even), cg.scc_index(odd));
        assert_ne!(cg.scc_index(even), cg.scc_index(driver));
        assert_eq!(cg.scc_members(even).len(), 2);
        assert!(cg.is_recursive(even));
        assert!(!cg.is_recursive(driver));
        // The recursive pair is scheduled before the driver.
        let levels = cg.schedule_levels();
        let pair_level = levels
            .iter()
            .position(|l| l.contains(&cg.scc_index(even)))
            .unwrap();
        let driver_level = levels
            .iter()
            .position(|l| l.contains(&cg.scc_index(driver)))
            .unwrap();
        assert!(pair_level < driver_level);
    }

    #[test]
    fn self_recursion_is_detected() {
        let (prog, cg) =
            graph("fn fact(n: i32) -> i32 { if n <= 1 { return 1; } return n * fact(n - 1); }");
        let fact = prog.func_id("fact").unwrap();
        assert!(cg.is_recursive(fact));
        assert_eq!(cg.scc_members(fact), &[fact]);
    }

    #[test]
    fn transitive_callers_cover_the_invalidation_set() {
        let (prog, cg) = graph(CHAIN);
        let leaf = prog.func_id("leaf").unwrap();
        let mid = prog.func_id("mid").unwrap();
        let top = prog.func_id("top").unwrap();
        assert_eq!(
            cg.transitive_callers(leaf),
            [leaf, mid, top].into_iter().collect()
        );
        assert_eq!(cg.transitive_callers(top), [top].into_iter().collect());
    }

    #[test]
    fn condensation_edges_follow_call_edges() {
        let (prog, cg) = graph(CHAIN);
        let leaf = cg.scc_index(prog.func_id("leaf").unwrap());
        let mid = cg.scc_index(prog.func_id("mid").unwrap());
        let top = cg.scc_index(prog.func_id("top").unwrap());
        assert_eq!(cg.scc_callees(top), &[mid].into_iter().collect());
        assert_eq!(cg.scc_callees(mid), &[leaf].into_iter().collect());
        assert!(cg.scc_callees(leaf).is_empty());
        assert_eq!(cg.scc_callers(leaf), &[mid].into_iter().collect());
        assert_eq!(cg.scc_callers(mid), &[top].into_iter().collect());
        assert!(cg.scc_callers(top).is_empty());
    }

    #[test]
    fn condensation_drops_intra_component_edges() {
        let (prog, cg) = graph(
            "fn even(n: i32) -> bool { if n == 0 { return true; } return odd(n - 1); }
             fn odd(n: i32) -> bool { if n == 0 { return false; } return even(n - 1); }
             fn driver(n: i32) -> bool { return even(n); }",
        );
        let pair = cg.scc_index(prog.func_id("even").unwrap());
        let driver = cg.scc_index(prog.func_id("driver").unwrap());
        // The even↔odd cycle collapses: no condensation self-edge.
        assert!(cg.scc_callees(pair).is_empty());
        assert_eq!(cg.scc_callers(pair), &[driver].into_iter().collect());
        let counts = cg.scc_dependency_counts();
        assert_eq!(counts[pair], 0);
        assert_eq!(counts[driver], 1);
    }

    #[test]
    fn dependency_counts_match_condensation_out_degree() {
        let (_, cg) = graph(CHAIN);
        let counts = cg.scc_dependency_counts();
        assert_eq!(counts.len(), cg.sccs().len());
        for (idx, &count) in counts.iter().enumerate() {
            assert_eq!(count, cg.scc_callees(idx).len());
        }
        // Exactly one component (the leaf) starts ready.
        assert_eq!(counts.iter().filter(|&&c| c == 0).count(), 1);
    }

    #[test]
    fn critical_path_equals_level_count() {
        for src in [
            CHAIN,
            "fn a(x: i32) -> i32 { return x; }",
            "fn a(x: i32) -> i32 { return b(x) + c(x); }
             fn b(x: i32) -> i32 { return d(x); }
             fn c(x: i32) -> i32 { return d(x); }
             fn d(x: i32) -> i32 { return x; }",
        ] {
            let (_, cg) = graph(src);
            assert_eq!(cg.critical_path_len(), cg.schedule_levels().len());
        }
    }

    #[test]
    fn every_scc_appears_in_exactly_one_level() {
        let (_, cg) = graph(CHAIN);
        let levels = cg.schedule_levels();
        let mut seen = BTreeSet::new();
        for level in &levels {
            for &scc in level {
                assert!(seen.insert(scc), "scc {scc} scheduled twice");
            }
        }
        assert_eq!(seen.len(), cg.sccs().len());
    }
}
