//! Stable, span-insensitive content hashing of MIR bodies.
//!
//! The incremental analysis engine caches function summaries keyed by what
//! the analysis actually reads: the function's MIR (statements, terminators,
//! local types, regions, outlives constraints) and its signature. Source
//! spans are deliberately **excluded** — editing one function shifts the
//! byte offsets of everything below it, and a hash that included spans would
//! invalidate the whole file on every keystroke.
//!
//! Callees inside `Call` terminators are hashed by *name*, not by [`FuncId`]:
//! ids are positional, so inserting a function above would renumber every
//! later id and spuriously change their hashes.
//!
//! The hasher is FNV-1a (64-bit): deterministic across runs, platforms and
//! toolchain versions, which an on-disk cache needs; `DefaultHasher` makes
//! no such guarantee.

use crate::ast::Mutability;
use crate::mir::{
    AggregateKind, Body, ConstValue, Operand, Place, Rvalue, StatementKind, TerminatorKind,
};
use crate::types::FuncId;
use crate::types::Ty;
use crate::CompiledProgram;

/// A 64-bit FNV-1a hasher with explicitly stable output.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Creates a hasher in the FNV offset-basis state.
    pub fn new() -> Self {
        StableHasher {
            state: 0xcbf29ce484222325,
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.state ^= v as u64;
        self.state = self.state.wrapping_mul(0x100000001b3);
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Feeds a `usize` (as `u64`, for cross-platform stability).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Feeds a string, length-prefixed so concatenations cannot collide.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        for b in s.as_bytes() {
            self.write_u8(*b);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hashes everything the information flow analysis reads from `func`: its
/// signature and its span-free MIR body, with callees identified by name.
pub fn function_content_hash(program: &CompiledProgram, func: FuncId) -> u64 {
    let mut h = StableHasher::new();
    hash_signature(&mut h, program, func);
    hash_body(&mut h, program, program.body(func));
    h.finish()
}

fn hash_signature(h: &mut StableHasher, program: &CompiledProgram, func: FuncId) {
    let sig = program.signature(func);
    h.write_str(&sig.name);
    h.write_usize(sig.inputs.len());
    for ty in &sig.inputs {
        hash_ty(h, program, ty);
    }
    hash_ty(h, program, &sig.output);
    h.write_u32(sig.region_count);
    h.write_usize(sig.outlives.len());
    for (longer, shorter) in &sig.outlives {
        h.write_u32(longer.0);
        h.write_u32(shorter.0);
    }
}

fn hash_body(h: &mut StableHasher, program: &CompiledProgram, body: &Body) {
    h.write_usize(body.arg_count);
    h.write_usize(body.local_decls.len());
    for decl in &body.local_decls {
        match &decl.name {
            Some(name) => {
                h.write_u8(1);
                h.write_str(name);
            }
            None => h.write_u8(0),
        }
        hash_ty(h, program, &decl.ty);
        h.write_bool(decl.mutable);
    }
    h.write_usize(body.regions.len());
    for region in &body.regions {
        h.write_bool(region.is_universal);
    }
    h.write_usize(body.outlives.len());
    for c in &body.outlives {
        h.write_u32(c.longer.0);
        h.write_u32(c.shorter.0);
    }
    h.write_usize(body.basic_blocks.len());
    for bb in body.block_ids() {
        let data = body.block(bb);
        h.write_usize(data.statements.len());
        for stmt in &data.statements {
            hash_statement(h, program, &stmt.kind);
        }
        hash_terminator(h, program, &data.terminator().kind);
    }
}

fn hash_statement(h: &mut StableHasher, program: &CompiledProgram, kind: &StatementKind) {
    match kind {
        StatementKind::Assign(place, rvalue) => {
            h.write_u8(0);
            hash_place(h, place);
            hash_rvalue(h, program, rvalue);
        }
        StatementKind::Nop => h.write_u8(1),
    }
}

fn hash_terminator(h: &mut StableHasher, program: &CompiledProgram, kind: &TerminatorKind) {
    match kind {
        TerminatorKind::Goto { target } => {
            h.write_u8(0);
            h.write_u32(target.0);
        }
        TerminatorKind::SwitchBool {
            discr,
            true_block,
            false_block,
        } => {
            h.write_u8(1);
            hash_operand(h, discr);
            h.write_u32(true_block.0);
            h.write_u32(false_block.0);
        }
        TerminatorKind::Call {
            func,
            args,
            destination,
            target,
        } => {
            h.write_u8(2);
            // By name, not id: ids are positional and shift when functions
            // are added or removed elsewhere in the program.
            h.write_str(&program.signature(*func).name);
            h.write_usize(args.len());
            for arg in args {
                hash_operand(h, arg);
            }
            hash_place(h, destination);
            h.write_u32(target.0);
        }
        TerminatorKind::Return => h.write_u8(3),
        TerminatorKind::Unreachable => h.write_u8(4),
    }
}

fn hash_rvalue(h: &mut StableHasher, program: &CompiledProgram, rvalue: &Rvalue) {
    match rvalue {
        Rvalue::Use(op) => {
            h.write_u8(0);
            hash_operand(h, op);
        }
        Rvalue::BinaryOp(op, a, b) => {
            h.write_u8(1);
            h.write_str(&op.to_string());
            hash_operand(h, a);
            hash_operand(h, b);
        }
        Rvalue::UnaryOp(op, a) => {
            h.write_u8(2);
            h.write_str(&op.to_string());
            hash_operand(h, a);
        }
        Rvalue::Ref {
            region,
            mutbl,
            place,
        } => {
            h.write_u8(3);
            h.write_u32(region.0);
            h.write_bool(matches!(mutbl, Mutability::Mut));
            hash_place(h, place);
        }
        Rvalue::Aggregate(kind, ops) => {
            h.write_u8(4);
            match kind {
                AggregateKind::Tuple => h.write_u8(0),
                AggregateKind::Struct(sid) => {
                    h.write_u8(1);
                    h.write_str(&program.structs.get(*sid).name);
                }
            }
            h.write_usize(ops.len());
            for op in ops {
                hash_operand(h, op);
            }
        }
    }
}

fn hash_operand(h: &mut StableHasher, op: &Operand) {
    match op {
        Operand::Copy(p) => {
            h.write_u8(0);
            hash_place(h, p);
        }
        Operand::Move(p) => {
            h.write_u8(1);
            hash_place(h, p);
        }
        Operand::Constant(c) => {
            h.write_u8(2);
            match c {
                ConstValue::Unit => h.write_u8(0),
                ConstValue::Int(v) => {
                    h.write_u8(1);
                    h.write_u64(*v as u64);
                }
                ConstValue::Bool(b) => {
                    h.write_u8(2);
                    h.write_bool(*b);
                }
            }
        }
    }
}

fn hash_place(h: &mut StableHasher, place: &Place) {
    h.write_u32(place.local.0);
    h.write_usize(place.projection.len());
    for elem in &place.projection {
        match elem {
            crate::mir::PlaceElem::Field(i) => {
                h.write_u8(0);
                h.write_u32(*i);
            }
            crate::mir::PlaceElem::Deref => h.write_u8(1),
        }
    }
}

fn hash_ty(h: &mut StableHasher, program: &CompiledProgram, ty: &Ty) {
    match ty {
        Ty::Unit => h.write_u8(0),
        Ty::Int => h.write_u8(1),
        Ty::Bool => h.write_u8(2),
        Ty::Tuple(tys) => {
            h.write_u8(3);
            h.write_usize(tys.len());
            for t in tys {
                hash_ty(h, program, t);
            }
        }
        Ty::Struct(sid) => {
            h.write_u8(4);
            let data = program.structs.get(*sid);
            h.write_str(&data.name);
            h.write_usize(data.fields.len());
            for (name, field_ty) in &data.fields {
                h.write_str(name);
                hash_ty(h, program, field_ty);
            }
        }
        Ty::Ref(region, mutbl, inner) => {
            h.write_u8(5);
            h.write_u32(region.0);
            h.write_bool(matches!(mutbl, Mutability::Mut));
            hash_ty(h, program, inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn hash_of(src: &str, name: &str) -> u64 {
        let prog = compile(src).expect("test program compiles");
        function_content_hash(&prog, prog.func_id(name).expect("function exists"))
    }

    #[test]
    fn hashing_is_deterministic() {
        let src = "fn f(x: i32) -> i32 { let a = x + 1; return a; }";
        assert_eq!(hash_of(src, "f"), hash_of(src, "f"));
    }

    #[test]
    fn body_changes_change_the_hash() {
        let a = hash_of("fn f(x: i32) -> i32 { return x + 1; }", "f");
        let b = hash_of("fn f(x: i32) -> i32 { return x + 2; }", "f");
        let c = hash_of("fn f(x: i32) -> i32 { return x * 1; }", "f");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn signature_changes_change_the_hash() {
        let a = hash_of("fn f(x: i32) -> i32 { return x; }", "f");
        let b = hash_of("fn f(x: i32, y: i32) -> i32 { return x; }", "f");
        assert_ne!(a, b);
    }

    #[test]
    fn editing_an_unrelated_function_keeps_the_hash() {
        // `g` gains a statement, which shifts every span below it; `f`'s
        // hash must not move.
        let v1 = "fn g(x: i32) -> i32 { return x; }
                  fn f(x: i32) -> i32 { return x + 1; }";
        let v2 = "fn g(x: i32) -> i32 { let y = x * 3; return y; }
                  fn f(x: i32) -> i32 { return x + 1; }";
        assert_eq!(hash_of(v1, "f"), hash_of(v2, "f"));
        assert_ne!(hash_of(v1, "g"), hash_of(v2, "g"));
    }

    #[test]
    fn inserting_a_function_above_keeps_callee_hashes() {
        // FuncIds shift, but calls are hashed by name.
        let v1 = "fn helper(x: i32) -> i32 { return x; }
                  fn f(x: i32) -> i32 { return helper(x); }";
        let v2 = "fn newcomer(x: i32) -> i32 { return x * 9; }
                  fn helper(x: i32) -> i32 { return x; }
                  fn f(x: i32) -> i32 { return helper(x); }";
        assert_eq!(hash_of(v1, "f"), hash_of(v2, "f"));
    }

    #[test]
    fn whitespace_and_comment_edits_keep_the_hash() {
        let v1 = "fn f(x: i32) -> i32 { return x + 1; }";
        let v2 = "fn f(x: i32)   ->   i32 {\n    return x + 1;\n}";
        assert_eq!(hash_of(v1, "f"), hash_of(v2, "f"));
    }

    #[test]
    fn hasher_primitives_separate_concatenations() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
        let mut c = StableHasher::default();
        c.write_u32(7);
        c.write_bool(true);
        c.write_usize(3);
        assert_ne!(c.finish(), StableHasher::new().finish());
    }
}
