//! Lowering from the typed AST to MIR.
//!
//! The lowering mirrors rustc's HAIR→MIR pass in miniature: expressions are
//! flattened into temporaries (`_1`, `_2`, ...), control flow becomes basic
//! blocks with `SwitchBool` terminators, and every function call becomes a
//! `Call` terminator (paper §4.1, Figure 1).
//!
//! Region variables are created here: one universal region per signature
//! region (identity-mapped, so signature region `'i` is body region `'i`),
//! then a fresh existential region for every reference position in a local's
//! type and for every borrow expression. Outlives constraints between these
//! regions are generated afterwards by [`crate::regions`].

use crate::ast::*;
use crate::mir::*;
use crate::span::Span;
use crate::typeck::{field_index, FnTypeck, VarId};
use crate::types::{FnSig, FuncId, RegionVid, StructTable, Ty};
use std::collections::HashMap;

/// Lowers one function to MIR.
///
/// The caller must pass the [`FnTypeck`] table produced by
/// [`crate::typeck::check_program`] for this function.
pub fn lower_fn(
    func: &FnDef,
    func_id: FuncId,
    sig: &FnSig,
    table: &FnTypeck,
    structs: &StructTable,
) -> Body {
    let mut cx = LowerCx {
        table,
        structs,
        local_decls: Vec::new(),
        basic_blocks: vec![BasicBlockData::new()],
        regions: Vec::new(),
        var_map: HashMap::new(),
        current: BasicBlock::START,
        loop_stack: Vec::new(),
        terminated: false,
        pending_declassify: None,
        declassified_calls: Vec::new(),
    };

    // Universal regions: identity-mapped from the signature.
    for i in 0..sig.region_count {
        cx.regions.push(RegionData {
            name: sig.region_names[i as usize].clone(),
            is_universal: true,
        });
    }

    // `_0`: the return place.
    cx.local_decls.push(LocalDecl {
        name: None,
        ty: sig.output.clone(),
        mutable: true,
        span: func.span,
    });

    // `_1..=_n`: the arguments, with signature types (universal regions).
    for (param, ty) in func.params.iter().zip(&sig.inputs) {
        let local = Local(cx.local_decls.len() as u32);
        cx.local_decls.push(LocalDecl {
            name: Some(param.name.clone()),
            ty: ty.clone(),
            mutable: false,
            span: param.span,
        });
        cx.var_map.insert(table.param_vars[cx.var_map.len()], local);
    }
    let arg_count = func.params.len();

    cx.lower_block(&func.body);

    // Fall-through at the end of the body: implicit `return` for unit
    // functions, unreachable otherwise (the type checker guarantees all
    // paths of a non-unit function end in `return`).
    if !cx.terminated {
        if sig.output == Ty::Unit {
            cx.push_stmt(
                StatementKind::Assign(
                    Place::return_place(),
                    Rvalue::Use(Operand::Constant(ConstValue::Unit)),
                ),
                func.span,
            );
            cx.terminate(TerminatorKind::Return, func.span);
        } else {
            cx.terminate(TerminatorKind::Unreachable, func.span);
        }
    }

    // Any block left without a terminator (created but never reached) gets
    // an `Unreachable` terminator so the CFG is total.
    for bb in &mut cx.basic_blocks {
        if bb.terminator.is_none() {
            bb.terminator = Some(Terminator {
                kind: TerminatorKind::Unreachable,
                span: func.span,
            });
        }
    }

    Body {
        name: func.name.clone(),
        func_id,
        arg_count,
        local_decls: cx.local_decls,
        basic_blocks: cx.basic_blocks,
        regions: cx.regions,
        outlives: Vec::new(),
        declassified_calls: cx.declassified_calls,
        module: func.module.clone(),
        span: func.span,
    }
}

struct LowerCx<'a> {
    table: &'a FnTypeck,
    structs: &'a StructTable,
    local_decls: Vec<LocalDecl>,
    basic_blocks: Vec<BasicBlockData>,
    regions: Vec<RegionData>,
    var_map: HashMap<VarId, Local>,
    current: BasicBlock,
    /// `(continue_target, break_target)` for each enclosing loop.
    loop_stack: Vec<(BasicBlock, BasicBlock)>,
    /// Whether the current block already has a terminator.
    terminated: bool,
    /// Initializer expression of a `#[declassify] let`, matched by id in
    /// [`LowerCx::lower_call`]. An id (not a flag) so that nested calls in
    /// the initializer's arguments, which lower first, are not marked.
    pending_declassify: Option<ExprId>,
    /// Accumulated locations of declassified `Call` terminators.
    declassified_calls: Vec<Location>,
}

impl<'a> LowerCx<'a> {
    // ---------------- infrastructure ----------------

    fn fresh_region(&mut self) -> RegionVid {
        let r = RegionVid(self.regions.len() as u32);
        self.regions.push(RegionData {
            name: None,
            is_universal: false,
        });
        r
    }

    /// Replaces every erased region in `ty` with a fresh existential region.
    fn freshen(&mut self, ty: &Ty) -> Ty {
        ty.map_regions(&mut |_| {
            let r = RegionVid(self.regions.len() as u32);
            self.regions.push(RegionData {
                name: None,
                is_universal: false,
            });
            r
        })
    }

    fn new_block(&mut self) -> BasicBlock {
        let bb = BasicBlock(self.basic_blocks.len() as u32);
        self.basic_blocks.push(BasicBlockData::new());
        bb
    }

    fn switch_to(&mut self, bb: BasicBlock) {
        self.current = bb;
        self.terminated = false;
    }

    fn push_stmt(&mut self, kind: StatementKind, span: Span) {
        debug_assert!(!self.terminated, "statement pushed after terminator");
        self.basic_blocks[self.current.index()]
            .statements
            .push(Statement { kind, span });
    }

    fn terminate(&mut self, kind: TerminatorKind, span: Span) {
        debug_assert!(!self.terminated, "block terminated twice");
        self.basic_blocks[self.current.index()].terminator = Some(Terminator { kind, span });
        self.terminated = true;
    }

    fn new_temp(&mut self, ty: Ty, span: Span) -> Local {
        let local = Local(self.local_decls.len() as u32);
        self.local_decls.push(LocalDecl {
            name: None,
            ty,
            mutable: true,
            span,
        });
        local
    }

    fn expr_ty(&self, e: &Expr) -> Ty {
        self.table
            .expr_tys
            .get(&e.id)
            .cloned()
            .expect("expression was not type checked")
    }

    // ---------------- statements ----------------

    fn lower_block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            if self.terminated {
                // Statements after `return`/`break`/`continue` are
                // unreachable; lower them into a fresh detached block so the
                // MIR stays well formed.
                let bb = self.new_block();
                self.switch_to(bb);
            }
            self.lower_stmt(stmt);
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Let {
                init, declassify, ..
            } => {
                let var = *self
                    .table
                    .let_vars
                    .get(&init.id)
                    .expect("let binding was not type checked");
                if *declassify {
                    self.pending_declassify = Some(init.id);
                }
                let ty = self.freshen(&self.table.var_tys[var.0 as usize].clone());
                let name = self.table.var_names[var.0 as usize].clone();
                let mutable = self.table.var_mut[var.0 as usize];
                let rvalue = self.lower_expr_to_rvalue(init);
                let local = Local(self.local_decls.len() as u32);
                self.local_decls.push(LocalDecl {
                    name: Some(name),
                    ty,
                    mutable,
                    span: stmt.span,
                });
                self.push_stmt(
                    StatementKind::Assign(Place::from_local(local), rvalue),
                    stmt.span,
                );
                self.var_map.insert(var, local);
            }
            StmtKind::Assign { place, value } => {
                let rvalue = self.lower_expr_to_rvalue(value);
                let place = self.lower_place(place);
                self.push_stmt(StatementKind::Assign(place, rvalue), stmt.span);
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                let discr = self.lower_expr_to_operand(cond);
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join_bb = self.new_block();
                self.terminate(
                    TerminatorKind::SwitchBool {
                        discr,
                        true_block: then_bb,
                        false_block: else_bb,
                    },
                    stmt.span,
                );

                self.switch_to(then_bb);
                self.lower_block(then_block);
                if !self.terminated {
                    self.terminate(TerminatorKind::Goto { target: join_bb }, stmt.span);
                }

                self.switch_to(else_bb);
                if let Some(eb) = else_block {
                    self.lower_block(eb);
                }
                if !self.terminated {
                    self.terminate(TerminatorKind::Goto { target: join_bb }, stmt.span);
                }

                self.switch_to(join_bb);
            }
            StmtKind::While { cond, body } => {
                let cond_bb = self.new_block();
                let body_bb = self.new_block();
                let exit_bb = self.new_block();
                self.terminate(TerminatorKind::Goto { target: cond_bb }, stmt.span);

                self.switch_to(cond_bb);
                let discr = self.lower_expr_to_operand(cond);
                self.terminate(
                    TerminatorKind::SwitchBool {
                        discr,
                        true_block: body_bb,
                        false_block: exit_bb,
                    },
                    stmt.span,
                );

                self.loop_stack.push((cond_bb, exit_bb));
                self.switch_to(body_bb);
                self.lower_block(body);
                if !self.terminated {
                    self.terminate(TerminatorKind::Goto { target: cond_bb }, stmt.span);
                }
                self.loop_stack.pop();

                self.switch_to(exit_bb);
            }
            StmtKind::Loop { body } => {
                let body_bb = self.new_block();
                let exit_bb = self.new_block();
                self.terminate(TerminatorKind::Goto { target: body_bb }, stmt.span);

                self.loop_stack.push((body_bb, exit_bb));
                self.switch_to(body_bb);
                self.lower_block(body);
                if !self.terminated {
                    self.terminate(TerminatorKind::Goto { target: body_bb }, stmt.span);
                }
                self.loop_stack.pop();

                self.switch_to(exit_bb);
            }
            StmtKind::Return(value) => {
                match value {
                    Some(e) => {
                        let rvalue = self.lower_expr_to_rvalue(e);
                        self.push_stmt(
                            StatementKind::Assign(Place::return_place(), rvalue),
                            stmt.span,
                        );
                    }
                    None => {
                        self.push_stmt(
                            StatementKind::Assign(
                                Place::return_place(),
                                Rvalue::Use(Operand::Constant(ConstValue::Unit)),
                            ),
                            stmt.span,
                        );
                    }
                }
                self.terminate(TerminatorKind::Return, stmt.span);
            }
            StmtKind::Break => {
                let (_, break_bb) = *self.loop_stack.last().expect("break outside loop");
                self.terminate(TerminatorKind::Goto { target: break_bb }, stmt.span);
            }
            StmtKind::Continue => {
                let (continue_bb, _) = *self.loop_stack.last().expect("continue outside loop");
                self.terminate(
                    TerminatorKind::Goto {
                        target: continue_bb,
                    },
                    stmt.span,
                );
            }
            StmtKind::Expr(e) => {
                // Evaluate for effect: lower into a temporary.
                let ty = self.freshen(&self.expr_ty(e));
                let rvalue = self.lower_expr_to_rvalue(e);
                let temp = self.new_temp(ty, stmt.span);
                self.push_stmt(
                    StatementKind::Assign(Place::from_local(temp), rvalue),
                    stmt.span,
                );
            }
        }
    }

    // ---------------- expressions ----------------

    /// Lowers an expression to an rvalue, emitting statements/terminators for
    /// any nested calls.
    fn lower_expr_to_rvalue(&mut self, expr: &Expr) -> Rvalue {
        match &expr.kind {
            ExprKind::Unit => Rvalue::Use(Operand::Constant(ConstValue::Unit)),
            ExprKind::Int(n) => Rvalue::Use(Operand::Constant(ConstValue::Int(*n))),
            ExprKind::Bool(b) => Rvalue::Use(Operand::Constant(ConstValue::Bool(*b))),
            ExprKind::Var(_) | ExprKind::Field(..) | ExprKind::Deref(_) => {
                Rvalue::Use(self.place_operand(expr))
            }
            ExprKind::Borrow { mutbl, expr: inner } => {
                let place = self.lower_place(inner);
                let region = self.fresh_region();
                Rvalue::Ref {
                    region,
                    mutbl: *mutbl,
                    place,
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.lower_expr_to_operand(lhs);
                let r = self.lower_expr_to_operand(rhs);
                Rvalue::BinaryOp(*op, l, r)
            }
            ExprKind::Unary { op, operand } => {
                let o = self.lower_expr_to_operand(operand);
                Rvalue::UnaryOp(*op, o)
            }
            ExprKind::Tuple(elems) => {
                let ops = elems
                    .iter()
                    .map(|e| self.lower_expr_to_operand(e))
                    .collect();
                Rvalue::Aggregate(AggregateKind::Tuple, ops)
            }
            ExprKind::StructLit { name, fields } => {
                let sid = self
                    .structs
                    .lookup(name)
                    .expect("struct literal for unknown struct survived type checking");
                // Reorder field initializers into declaration order.
                let def = self.structs.get(sid).clone();
                let mut ops = Vec::with_capacity(def.fields.len());
                for (fname, _) in &def.fields {
                    let (_, fexpr) = fields
                        .iter()
                        .find(|(n, _)| n == fname)
                        .expect("missing field survived type checking");
                    ops.push(self.lower_expr_to_operand(fexpr));
                }
                Rvalue::Aggregate(AggregateKind::Struct(sid), ops)
            }
            ExprKind::Call { args, .. } => {
                let temp = self.lower_call(expr, args);
                Rvalue::Use(Operand::Copy(Place::from_local(temp)))
            }
        }
    }

    /// Lowers an expression to an operand, introducing a temporary when the
    /// expression is not already a constant or place.
    fn lower_expr_to_operand(&mut self, expr: &Expr) -> Operand {
        match &expr.kind {
            ExprKind::Unit => Operand::Constant(ConstValue::Unit),
            ExprKind::Int(n) => Operand::Constant(ConstValue::Int(*n)),
            ExprKind::Bool(b) => Operand::Constant(ConstValue::Bool(*b)),
            ExprKind::Var(_) | ExprKind::Field(..) | ExprKind::Deref(_) => self.place_operand(expr),
            _ => {
                let ty = self.freshen(&self.expr_ty(expr));
                let rvalue = self.lower_expr_to_rvalue(expr);
                let temp = self.new_temp(ty, expr.span);
                self.push_stmt(
                    StatementKind::Assign(Place::from_local(temp), rvalue),
                    expr.span,
                );
                Operand::Copy(Place::from_local(temp))
            }
        }
    }

    /// Builds the `Copy`/`Move` operand for a place expression. Unique
    /// references are moved, everything else is copied (Rox has no `Drop`
    /// types, so the distinction is cosmetic but mirrors rustc).
    fn place_operand(&mut self, expr: &Expr) -> Operand {
        let place = self.lower_place(expr);
        match self.expr_ty(expr) {
            Ty::Ref(_, m, _) if m.is_mut() => Operand::Move(place),
            _ => Operand::Copy(place),
        }
    }

    /// Lowers a call expression into a `Call` terminator and returns the
    /// temporary holding its result.
    fn lower_call(&mut self, expr: &Expr, args: &[Expr]) -> Local {
        let func = *self
            .table
            .call_resolutions
            .get(&expr.id)
            .expect("call was not resolved during type checking");
        let arg_ops: Vec<Operand> = args.iter().map(|a| self.lower_expr_to_operand(a)).collect();
        let ty = self.freshen(&self.expr_ty(expr));
        let dest = self.new_temp(ty, expr.span);
        let next = self.new_block();
        if self.pending_declassify == Some(expr.id) {
            self.pending_declassify = None;
            self.declassified_calls.push(Location {
                block: self.current,
                statement_index: self.basic_blocks[self.current.index()].statements.len(),
            });
        }
        self.terminate(
            TerminatorKind::Call {
                func,
                args: arg_ops,
                destination: Place::from_local(dest),
                target: next,
            },
            expr.span,
        );
        self.switch_to(next);
        dest
    }

    /// Lowers a place expression to a MIR [`Place`]. Non-place bases (e.g.
    /// field access on a call result) are first evaluated into a temporary.
    fn lower_place(&mut self, expr: &Expr) -> Place {
        match &expr.kind {
            ExprKind::Var(_) => {
                let var = *self
                    .table
                    .expr_vars
                    .get(&expr.id)
                    .expect("variable was not resolved during type checking");
                Place::from_local(
                    *self
                        .var_map
                        .get(&var)
                        .expect("variable used before its binding was lowered"),
                )
            }
            ExprKind::Field(base, field) => {
                let base_ty = self.expr_ty(base);
                let mut place = self.lower_place_or_temp(base);
                // Auto-deref through a reference, as the type checker did.
                let container = match base_ty {
                    Ty::Ref(_, _, inner) => {
                        place = place.deref();
                        (*inner).clone()
                    }
                    other => other,
                };
                let idx = field_index(&container, field, self.structs)
                    .expect("field resolution survived type checking");
                place.field(idx)
            }
            ExprKind::Deref(base) => {
                let place = self.lower_place_or_temp(base);
                place.deref()
            }
            _ => self.lower_place_or_temp(expr),
        }
    }

    /// Like [`Self::lower_place`], but spills non-place expressions into a
    /// temporary local.
    fn lower_place_or_temp(&mut self, expr: &Expr) -> Place {
        if expr.is_place() {
            self.lower_place(expr)
        } else {
            let ty = self.freshen(&self.expr_ty(expr));
            let rvalue = self.lower_expr_to_rvalue(expr);
            let temp = self.new_temp(ty, expr.span);
            self.push_stmt(
                StatementKind::Assign(Place::from_local(temp), rvalue),
                expr.span,
            );
            Place::from_local(temp)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use crate::mir::*;

    fn body_of(src: &str, name: &str) -> Body {
        let prog = compile(src).expect("compile failure");
        prog.bodies
            .iter()
            .find(|b| b.name == name)
            .expect("function not found")
            .clone()
    }

    #[test]
    fn straight_line_function_has_single_block() {
        let b = body_of("fn f(x: i32) -> i32 { let y = x + 1; return y; }", "f");
        // The entry block holds everything; extra blocks may exist but must
        // be unreachable.
        assert!(matches!(
            b.block(BasicBlock::START).terminator().kind,
            TerminatorKind::Return
        ));
        assert_eq!(b.arg_count, 1);
        assert!(b.instruction_count() >= 3);
    }

    #[test]
    fn if_lowers_to_switch_and_join() {
        let b = body_of(
            "fn f(c: bool) -> i32 { let mut x = 0; if c { x = 1; } else { x = 2; } return x; }",
            "f",
        );
        let has_switch = b.block_ids().any(|bb| {
            matches!(
                b.block(bb).terminator().kind,
                TerminatorKind::SwitchBool { .. }
            )
        });
        assert!(has_switch);
        let returns = b.return_locations();
        assert_eq!(returns.len(), 1);
    }

    #[test]
    fn while_loop_forms_a_cycle() {
        let b = body_of(
            "fn f() -> i32 { let mut i = 0; while i < 10 { i = i + 1; } return i; }",
            "f",
        );
        // Some block must have a back edge to an earlier block.
        let mut has_back_edge = false;
        for bb in b.block_ids() {
            for succ in b.successors(bb) {
                if succ.index() <= bb.index() {
                    has_back_edge = true;
                }
            }
        }
        assert!(has_back_edge);
    }

    #[test]
    fn calls_become_terminators() {
        let b = body_of(
            "fn g(x: i32) -> i32 { return x; } fn f() -> i32 { return g(3) + g(4); }",
            "f",
        );
        let n_calls = b
            .block_ids()
            .filter(|bb| matches!(b.block(*bb).terminator().kind, TerminatorKind::Call { .. }))
            .count();
        assert_eq!(n_calls, 2);
    }

    #[test]
    fn borrows_create_fresh_regions() {
        let b = body_of(
            "fn f() { let mut x = 1; let r = &mut x; *r = 2; let s = &x; }",
            "f",
        );
        let n_refs = b
            .basic_blocks
            .iter()
            .flat_map(|bb| &bb.statements)
            .filter(|s| matches!(s.kind, StatementKind::Assign(_, Rvalue::Ref { .. })))
            .count();
        assert_eq!(n_refs, 2);
        // At least two existential regions plus those from local types.
        assert!(b.regions.iter().filter(|r| !r.is_universal).count() >= 2);
    }

    #[test]
    fn field_assignment_produces_projected_place() {
        let b = body_of("fn f() { let mut t = (1, 2); t.1 = 3; }", "f");
        let found = b
            .basic_blocks
            .iter()
            .flat_map(|bb| &bb.statements)
            .any(|s| match &s.kind {
                StatementKind::Assign(p, _) => p.projection == vec![PlaceElem::Field(1)],
                _ => false,
            });
        assert!(found);
    }

    #[test]
    fn deref_assignment_through_reference() {
        let b = body_of("fn f(p: &mut (i32, i32)) { (*p).1 = 3; }", "f");
        let found = b
            .basic_blocks
            .iter()
            .flat_map(|bb| &bb.statements)
            .any(|s| match &s.kind {
                StatementKind::Assign(p, _) => {
                    p.projection == vec![PlaceElem::Deref, PlaceElem::Field(1)]
                }
                _ => false,
            });
        assert!(found);
    }

    #[test]
    fn autoderef_field_access_inserts_deref() {
        let b = body_of("fn f(p: &(i32, i32)) -> i32 { return p.0; }", "f");
        let found = b
            .basic_blocks
            .iter()
            .flat_map(|bb| &bb.statements)
            .any(|s| match &s.kind {
                StatementKind::Assign(_, Rvalue::Use(op)) => op
                    .place()
                    .is_some_and(|p| p.projection == vec![PlaceElem::Deref, PlaceElem::Field(0)]),
                _ => false,
            });
        assert!(found);
    }

    #[test]
    fn unit_function_gets_implicit_return() {
        let b = body_of("fn f() { let x = 1; }", "f");
        assert_eq!(b.return_locations().len(), 1);
    }

    #[test]
    fn break_and_continue_target_loop_blocks() {
        let b = body_of(
            "fn f() { let mut i = 0; while true { if i > 3 { break; } i = i + 1; continue; } }",
            "f",
        );
        // Simply verify the CFG is total (every block has a terminator) and a
        // return exists.
        for bb in b.block_ids() {
            let _ = b.block(bb).terminator();
        }
        assert_eq!(b.return_locations().len(), 1);
    }

    #[test]
    fn arguments_use_universal_regions() {
        let b = body_of("fn f<'a>(p: &'a mut i32) { *p = 1; }", "f");
        assert!(b.regions[0].is_universal);
        assert_eq!(b.regions[0].name.as_deref(), Some("a"));
        let arg_ty = &b.local_decl(Local(1)).ty;
        assert_eq!(arg_ty.regions(), vec![crate::types::RegionVid(0)]);
    }

    #[test]
    fn struct_literal_orders_fields_by_declaration() {
        let b = body_of(
            "struct P { a: i32, b: bool } fn f() -> P { return P { b: true, a: 1 }; }",
            "f",
        );
        let found = b
            .basic_blocks
            .iter()
            .flat_map(|bb| &bb.statements)
            .any(|s| match &s.kind {
                StatementKind::Assign(_, Rvalue::Aggregate(AggregateKind::Struct(_), ops)) => {
                    matches!(ops[0], Operand::Constant(ConstValue::Int(1)))
                        && matches!(ops[1], Operand::Constant(ConstValue::Bool(true)))
                }
                _ => false,
            });
        assert!(found);
    }

    #[test]
    fn unreachable_code_after_return_is_isolated() {
        let b = body_of("fn f() -> i32 { return 1; let x = 2; return x; }", "f");
        // The entry block returns immediately.
        assert!(matches!(
            b.block(BasicBlock::START).terminator().kind,
            TerminatorKind::Return
        ));
    }
}
