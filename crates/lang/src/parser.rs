//! Recursive-descent parser for the Rox surface language.
//!
//! The grammar (roughly):
//!
//! ```text
//! program    := inner_attr* (struct_def | fn_def)*
//! inner_attr := "#" "!" "[" IDENT "(" IDENT ")" "]"        // lattice, default_label
//!             | "#" "!" "[" "module_policy" "(" IDENT ("," policy_clause)* ")" "]"
//! policy_clause := "label" "(" IDENT ")" | "sink" "(" IDENT ")"
//! outer_attr := "#" "[" IDENT ("(" IDENT ")")? "]"         // label, sink, module, declassify
//!             | "#" "[" "effect" "(" effect_clause ("," effect_clause)* ")" "]"
//! effect_clause := "pure" | "reads" "(" IDENT ("," IDENT)* ")"
//!                | "writes" "(" IDENT ("," IDENT)* ")"
//! struct_def := "struct" IDENT "{" (IDENT ":" ty ","?)* "}"
//! fn_def     := outer_attr* "fn" IDENT lifetimes? "(" params ")" ("->" ty)? where? block
//! param      := outer_attr* IDENT ":" ty
//! lifetimes  := "<" LIFETIME ("," LIFETIME)* ">"
//! where      := "where" LIFETIME ":" LIFETIME ("," LIFETIME ":" LIFETIME)*
//! ty         := "(" ")" | "i32" | "bool" | "(" ty ("," ty)+ ")" | IDENT
//!             | "&" LIFETIME? "mut"? ty
//! block      := "{" stmt* "}"
//! stmt       := outer_attr? "let" "mut"? IDENT (":" ty)? "=" expr ";"
//!             | "if" expr block ("else" (block | if_stmt))?
//!             | "while" expr block | "loop" block
//!             | "return" expr? ";" | "break" ";" | "continue" ";"
//!             | expr ("=" expr)? ";"
//! expr       := or_expr
//! ```
//!
//! The attribute layer carries the IFC policy surface: `#![lattice(L)]` /
//! `#![default_label(L)]` / `#![module_policy(M, ...)]` at module level,
//! `#[label(L)]` on functions and parameters, `#[sink(L)]` / `#[module(M)]` /
//! `#[effect(..)]` on functions, and `#[declassify]` on a `let` whose
//! initializer is a call (see `flowistry-ifc` and `flowistry-lint`).
//!
//! Operator precedence: `||` < `&&` < comparisons < `+ -` < `* / %` < unary.

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};
use crate::span::{Diagnostic, Span};

/// Parses a complete Rox program.
///
/// # Errors
///
/// Returns the first lexing or parsing [`Diagnostic`] encountered.
///
/// # Examples
///
/// ```
/// use flowistry_lang::parser::parse_program;
/// let src = "fn add(x: i32, y: i32) -> i32 { return x + y; }";
/// let program = parse_program(src).unwrap();
/// assert_eq!(program.funcs.len(), 1);
/// assert_eq!(program.funcs[0].params.len(), 2);
/// ```
pub fn parse_program(src: &str) -> Result<Program, Diagnostic> {
    let tokens = tokenize(src)?;
    Parser::new(tokens).program()
}

/// Parses a single expression (useful in tests and tools).
///
/// # Errors
///
/// Returns a [`Diagnostic`] if the source is not a single valid expression.
pub fn parse_expr(src: &str) -> Result<Expr, Diagnostic> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_expr_id: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            next_expr_id: 0,
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, Diagnostic> {
        if self.check(&kind) {
            Ok(self.bump())
        } else {
            Err(Diagnostic::error(
                format!("expected `{kind}`, found `{}`", self.peek()),
                self.peek_span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            other => Err(Diagnostic::error(
                format!("expected identifier, found `{other}`"),
                self.peek_span(),
            )),
        }
    }

    fn expect_lifetime(&mut self) -> Result<String, Diagnostic> {
        match self.peek().clone() {
            TokenKind::Lifetime(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(Diagnostic::error(
                format!("expected lifetime, found `{other}`"),
                self.peek_span(),
            )),
        }
    }

    fn fresh_id(&mut self) -> ExprId {
        let id = ExprId(self.next_expr_id);
        self.next_expr_id += 1;
        id
    }

    fn mk_expr(&mut self, kind: ExprKind, span: Span) -> Expr {
        Expr {
            id: self.fresh_id(),
            kind,
            span,
        }
    }

    // ---------------- attributes ----------------

    /// Parses one `#[name]` / `#[name(arg)]` outer attribute.
    fn outer_attr(&mut self) -> Result<(String, Option<String>, Span), Diagnostic> {
        let start = self.expect(TokenKind::Pound)?.span;
        self.expect(TokenKind::LBracket)?;
        let (name, _) = self.expect_ident()?;
        let arg = if self.eat(&TokenKind::LParen) {
            let (a, _) = self.expect_ident()?;
            self.expect(TokenKind::RParen)?;
            Some(a)
        } else {
            None
        };
        let end = self.expect(TokenKind::RBracket)?.span;
        Ok((name, arg, start.to(end)))
    }

    /// Parses the `( IDENT )` argument of a single-argument attribute.
    fn attr_arg(&mut self) -> Result<String, Diagnostic> {
        self.expect(TokenKind::LParen)?;
        let (arg, _) = self.expect_ident()?;
        self.expect(TokenKind::RParen)?;
        Ok(arg)
    }

    /// Parses the `( IDENT ("," IDENT)* )` list of an effect clause.
    fn attr_ident_list(&mut self) -> Result<Vec<String>, Diagnostic> {
        self.expect(TokenKind::LParen)?;
        let mut names = Vec::new();
        loop {
            let (name, _) = self.expect_ident()?;
            names.push(name);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(names)
    }

    /// Parses the clause list of `#[effect(...)]`, merging into `decl` so
    /// repeated `#[effect]` attributes on one function accumulate.
    fn effect_clauses(&mut self, decl: &mut EffectDecl) -> Result<(), Diagnostic> {
        self.expect(TokenKind::LParen)?;
        loop {
            let (cname, cspan) = self.expect_ident()?;
            match cname.as_str() {
                "pure" => decl.pure = true,
                "reads" => decl.reads.extend(self.attr_ident_list()?),
                "writes" => decl.writes.extend(self.attr_ident_list()?),
                other => {
                    return Err(Diagnostic::error(
                        format!(
                            "unknown effect clause `{other}` \
                             (expected `pure`, `reads(..)`, or `writes(..)`)"
                        ),
                        cspan,
                    ));
                }
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(())
    }

    /// Parses the `(name, clause*)` body of `#![module_policy(...)]`.
    fn module_policy_body(&mut self) -> Result<ModulePolicy, Diagnostic> {
        self.expect(TokenKind::LParen)?;
        let (name, _) = self.expect_ident()?;
        let mut policy = ModulePolicy {
            name,
            label: None,
            clearance: None,
        };
        while self.eat(&TokenKind::Comma) {
            let (cname, cspan) = self.expect_ident()?;
            match cname.as_str() {
                "label" => policy.label = Some(self.attr_arg()?),
                "sink" => policy.clearance = Some(self.attr_arg()?),
                other => {
                    return Err(Diagnostic::error(
                        format!(
                            "unknown module_policy clause `{other}` \
                             (expected `label(L)` or `sink(C)`)"
                        ),
                        cspan,
                    ));
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(policy)
    }

    // ---------------- items ----------------

    fn program(&mut self) -> Result<Program, Diagnostic> {
        let mut program = Program::default();
        // Inner attributes may only appear before the first item.
        while self.check(&TokenKind::Pound) && self.peek2() == Some(&TokenKind::Bang) {
            let start = self.expect(TokenKind::Pound)?.span;
            self.expect(TokenKind::Bang)?;
            self.expect(TokenKind::LBracket)?;
            let (name, nspan) = self.expect_ident()?;
            match name.as_str() {
                "lattice" => program.lattice = Some(self.attr_arg()?),
                "default_label" => program.default_label = Some(self.attr_arg()?),
                "module_policy" => program.module_policies.push(self.module_policy_body()?),
                other => {
                    return Err(Diagnostic::error(
                        format!(
                            "unknown module attribute `#![{other}(..)]` \
                             (expected `lattice`, `default_label`, or `module_policy`)"
                        ),
                        start.to(nspan),
                    ));
                }
            }
            self.expect(TokenKind::RBracket)?;
        }
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Struct => program.structs.push(self.struct_def()?),
                TokenKind::Fn | TokenKind::Pound => program.funcs.push(self.fn_def()?),
                other => {
                    return Err(Diagnostic::error(
                        format!("expected `fn` or `struct`, found `{other}`"),
                        self.peek_span(),
                    ));
                }
            }
        }
        Ok(program)
    }

    fn struct_def(&mut self) -> Result<StructDef, Diagnostic> {
        let start = self.expect(TokenKind::Struct)?.span;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.check(&TokenKind::RBrace) {
            let (fname, _) = self.expect_ident()?;
            self.expect(TokenKind::Colon)?;
            let fty = self.ty()?;
            fields.push((fname, fty));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(StructDef {
            name,
            fields,
            span: start.to(end),
        })
    }

    fn fn_def(&mut self) -> Result<FnDef, Diagnostic> {
        let mut label = None;
        let mut clearance = None;
        let mut effect: Option<EffectDecl> = None;
        let mut module = None;
        // `#[effect(...)]` carries a clause list the generic `outer_attr`
        // shape cannot express, so function attributes dispatch on the name.
        while self.check(&TokenKind::Pound) {
            let astart = self.expect(TokenKind::Pound)?.span;
            self.expect(TokenKind::LBracket)?;
            let (aname, aspan) = self.expect_ident()?;
            match aname.as_str() {
                "label" => label = Some(self.attr_arg()?),
                "sink" => clearance = Some(self.attr_arg()?),
                "module" => module = Some(self.attr_arg()?),
                "effect" => {
                    let decl = effect.get_or_insert_with(EffectDecl::default);
                    self.effect_clauses(decl)?;
                    if decl.pure && !decl.writes.is_empty() {
                        return Err(Diagnostic::error(
                            "contradictory `#[effect]`: `pure` promises no \
                             caller-visible writes but `writes(..)` declares some",
                            astart.to(self.peek_span()),
                        ));
                    }
                }
                other => {
                    return Err(Diagnostic::error(
                        format!(
                            "unknown function attribute `#[{other}]` \
                             (expected `#[label(L)]`, `#[sink(L)]`, \
                             `#[module(M)]`, or `#[effect(..)]`)"
                        ),
                        astart.to(aspan),
                    ));
                }
            }
            self.expect(TokenKind::RBracket)?;
        }
        let start = self.expect(TokenKind::Fn)?.span;
        let (name, _) = self.expect_ident()?;

        let mut lifetime_params = Vec::new();
        if self.eat(&TokenKind::Lt) {
            loop {
                lifetime_params.push(self.expect_lifetime()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::Gt)?;
        }

        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        while !self.check(&TokenKind::RParen) {
            let mut plabel = None;
            while self.check(&TokenKind::Pound) {
                let (aname, arg, aspan) = self.outer_attr()?;
                match (aname.as_str(), arg) {
                    ("label", Some(l)) => plabel = Some(l),
                    _ => {
                        return Err(Diagnostic::error(
                            format!(
                                "unknown parameter attribute `#[{aname}]` \
                                 (expected `#[label(L)]`)"
                            ),
                            aspan,
                        ));
                    }
                }
            }
            let (pname, pspan) = self.expect_ident()?;
            self.expect(TokenKind::Colon)?;
            let pty = self.ty()?;
            params.push(Param {
                name: pname,
                ty: pty,
                label: plabel,
                span: pspan,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;

        let ret_ty = if self.eat(&TokenKind::Arrow) {
            self.ty()?
        } else {
            AstTy::Unit
        };

        let mut outlives_bounds = Vec::new();
        if self.eat(&TokenKind::Where) {
            loop {
                let long = self.expect_lifetime()?;
                self.expect(TokenKind::Colon)?;
                let short = self.expect_lifetime()?;
                outlives_bounds.push((long, short));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let body = self.block()?;
        let span = start.to(body.span);
        Ok(FnDef {
            name,
            lifetime_params,
            outlives_bounds,
            params,
            ret_ty,
            body,
            label,
            clearance,
            effect,
            module,
            span,
        })
    }

    // ---------------- types ----------------

    fn ty(&mut self) -> Result<AstTy, Diagnostic> {
        match self.peek().clone() {
            TokenKind::I32 => {
                self.bump();
                Ok(AstTy::Int)
            }
            TokenKind::Bool => {
                self.bump();
                Ok(AstTy::Bool)
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(AstTy::Named(name))
            }
            TokenKind::LParen => {
                self.bump();
                if self.eat(&TokenKind::RParen) {
                    return Ok(AstTy::Unit);
                }
                let mut tys = vec![self.ty()?];
                while self.eat(&TokenKind::Comma) {
                    if self.check(&TokenKind::RParen) {
                        break;
                    }
                    tys.push(self.ty()?);
                }
                self.expect(TokenKind::RParen)?;
                if tys.len() == 1 {
                    Ok(tys.pop().expect("len checked"))
                } else {
                    Ok(AstTy::Tuple(tys))
                }
            }
            TokenKind::Amp => {
                self.bump();
                let lifetime = if let TokenKind::Lifetime(lt) = self.peek().clone() {
                    self.bump();
                    Some(lt)
                } else {
                    None
                };
                let mutbl = if self.eat(&TokenKind::Mut) {
                    Mutability::Mut
                } else {
                    Mutability::Shared
                };
                let inner = Box::new(self.ty()?);
                Ok(AstTy::Ref {
                    lifetime,
                    mutbl,
                    inner,
                })
            }
            other => Err(Diagnostic::error(
                format!("expected type, found `{other}`"),
                self.peek_span(),
            )),
        }
    }

    // ---------------- statements ----------------

    fn block(&mut self) -> Result<Block, Diagnostic> {
        let start = self.expect(TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        while !self.check(&TokenKind::RBrace) {
            if self.check(&TokenKind::Eof) {
                return Err(Diagnostic::error("unterminated block", start));
            }
            stmts.push(self.stmt()?);
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(Block {
            stmts,
            span: start.to(end),
        })
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.peek_span();
        match self.peek().clone() {
            TokenKind::Pound => {
                let (aname, arg, aspan) = self.outer_attr()?;
                if aname != "declassify" || arg.is_some() {
                    return Err(Diagnostic::error(
                        format!(
                            "unknown statement attribute `#[{aname}]` \
                             (expected `#[declassify]`)"
                        ),
                        aspan,
                    ));
                }
                if !self.check(&TokenKind::Let) {
                    return Err(Diagnostic::error(
                        "`#[declassify]` must precede a `let` binding",
                        aspan,
                    ));
                }
                let inner = self.stmt()?;
                let inner_span = inner.span;
                match inner.kind {
                    StmtKind::Let {
                        name,
                        mutable,
                        ty,
                        init,
                        ..
                    } => {
                        if !matches!(init.kind, ExprKind::Call { .. }) {
                            return Err(Diagnostic::error(
                                "`#[declassify]` requires the initializer to be a \
                                 function call (the sanctioned release point)",
                                init.span,
                            ));
                        }
                        Ok(Stmt {
                            kind: StmtKind::Let {
                                name,
                                mutable,
                                ty,
                                init,
                                declassify: true,
                            },
                            span: aspan.to(inner_span),
                        })
                    }
                    _ => unreachable!("checked `let` above"),
                }
            }
            TokenKind::Let => {
                self.bump();
                let mutable = self.eat(&TokenKind::Mut);
                let (name, _) = self.expect_ident()?;
                let ty = if self.eat(&TokenKind::Colon) {
                    Some(self.ty()?)
                } else {
                    None
                };
                self.expect(TokenKind::Eq)?;
                let init = self.expr()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Let {
                        name,
                        mutable,
                        ty,
                        init,
                        declassify: false,
                    },
                    span: start.to(end),
                })
            }
            TokenKind::If => self.if_stmt(),
            TokenKind::While => {
                self.bump();
                let cond = self.expr()?;
                let body = self.block()?;
                let span = start.to(body.span);
                Ok(Stmt {
                    kind: StmtKind::While { cond, body },
                    span,
                })
            }
            TokenKind::Loop => {
                self.bump();
                let body = self.block()?;
                let span = start.to(body.span);
                Ok(Stmt {
                    kind: StmtKind::Loop { body },
                    span,
                })
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.check(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Return(value),
                    span: start.to(end),
                })
            }
            TokenKind::Break => {
                self.bump();
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Break,
                    span: start.to(end),
                })
            }
            TokenKind::Continue => {
                self.bump();
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Continue,
                    span: start.to(end),
                })
            }
            _ => {
                let e = self.expr()?;
                if self.eat(&TokenKind::Eq) {
                    if !e.is_place() {
                        return Err(Diagnostic::error(
                            "left-hand side of assignment is not a place expression",
                            e.span,
                        ));
                    }
                    let value = self.expr()?;
                    let end = self.expect(TokenKind::Semi)?.span;
                    Ok(Stmt {
                        kind: StmtKind::Assign { place: e, value },
                        span: start.to(end),
                    })
                } else {
                    let end = self.expect(TokenKind::Semi)?.span;
                    Ok(Stmt {
                        kind: StmtKind::Expr(e),
                        span: start.to(end),
                    })
                }
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::If)?.span;
        let cond = self.expr()?;
        let then_block = self.block()?;
        let mut span = start.to(then_block.span);
        let else_block = if self.eat(&TokenKind::Else) {
            if self.check(&TokenKind::If) {
                // `else if` chains desugar into a nested block containing an if.
                let nested = self.if_stmt()?;
                let nested_span = nested.span;
                span = span.to(nested_span);
                Some(Block {
                    stmts: vec![nested],
                    span: nested_span,
                })
            } else {
                let b = self.block()?;
                span = span.to(b.span);
                Some(b)
            }
        } else {
            None
        };
        Ok(Stmt {
            kind: StmtKind::If {
                cond,
                then_block,
                else_block,
            },
            span,
        })
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.and_expr()?;
        while self.check(&TokenKind::PipePipe) {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk_expr(
                ExprKind::Binary {
                    op: BinOp::Or,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.cmp_expr()?;
        while self.check(&TokenKind::AmpAmp) {
            self.bump();
            let rhs = self.cmp_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk_expr(
                ExprKind::Binary {
                    op: BinOp::And,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, Diagnostic> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::EqEq => Some(BinOp::Eq),
            TokenKind::NotEq => Some(BinOp::Ne),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            let span = lhs.span.to(rhs.span);
            Ok(self.mk_expr(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            ))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk_expr(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk_expr(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.peek_span();
        match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span);
                Ok(self.mk_expr(
                    ExprKind::Unary {
                        op: UnOp::Neg,
                        operand: Box::new(operand),
                    },
                    span,
                ))
            }
            TokenKind::Bang => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span);
                Ok(self.mk_expr(
                    ExprKind::Unary {
                        op: UnOp::Not,
                        operand: Box::new(operand),
                    },
                    span,
                ))
            }
            TokenKind::Star => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span);
                Ok(self.mk_expr(ExprKind::Deref(Box::new(operand)), span))
            }
            TokenKind::Amp => {
                self.bump();
                let mutbl = if self.eat(&TokenKind::Mut) {
                    Mutability::Mut
                } else {
                    Mutability::Shared
                };
                let operand = self.unary_expr()?;
                let span = start.to(operand.span);
                Ok(self.mk_expr(
                    ExprKind::Borrow {
                        mutbl,
                        expr: Box::new(operand),
                    },
                    span,
                ))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut e = self.primary_expr()?;
        while self.check(&TokenKind::Dot) {
            self.bump();
            let field = match self.peek().clone() {
                TokenKind::Int(n) => {
                    self.bump();
                    if n < 0 {
                        return Err(Diagnostic::error(
                            "tuple field index must be non-negative",
                            self.peek_span(),
                        ));
                    }
                    FieldName::Index(n as u32)
                }
                TokenKind::Ident(name) => {
                    self.bump();
                    FieldName::Named(name)
                }
                other => {
                    return Err(Diagnostic::error(
                        format!("expected field name or index after `.`, found `{other}`"),
                        self.peek_span(),
                    ));
                }
            };
            let span = e.span.to(self.tokens[self.pos.saturating_sub(1)].span);
            e = self.mk_expr(ExprKind::Field(Box::new(e), field), span);
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(self.mk_expr(ExprKind::Int(n), start))
            }
            TokenKind::True => {
                self.bump();
                Ok(self.mk_expr(ExprKind::Bool(true), start))
            }
            TokenKind::False => {
                self.bump();
                Ok(self.mk_expr(ExprKind::Bool(false), start))
            }
            TokenKind::LParen => {
                self.bump();
                if self.eat(&TokenKind::RParen) {
                    let span = start.to(self.tokens[self.pos - 1].span);
                    return Ok(self.mk_expr(ExprKind::Unit, span));
                }
                let first = self.expr()?;
                if self.check(&TokenKind::Comma) {
                    let mut elems = vec![first];
                    while self.eat(&TokenKind::Comma) {
                        if self.check(&TokenKind::RParen) {
                            break;
                        }
                        elems.push(self.expr()?);
                    }
                    let end = self.expect(TokenKind::RParen)?.span;
                    Ok(self.mk_expr(ExprKind::Tuple(elems), start.to(end)))
                } else {
                    self.expect(TokenKind::RParen)?;
                    Ok(first)
                }
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.check(&TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    while !self.check(&TokenKind::RParen) {
                        args.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    let end = self.expect(TokenKind::RParen)?.span;
                    Ok(self.mk_expr(ExprKind::Call { callee: name, args }, start.to(end)))
                } else if self.check(&TokenKind::LBrace)
                    && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                {
                    // Struct literal: only for capitalized names, to avoid
                    // ambiguity with `while x { ... }` style conditions.
                    self.bump();
                    let mut fields = Vec::new();
                    while !self.check(&TokenKind::RBrace) {
                        let (fname, _) = self.expect_ident()?;
                        self.expect(TokenKind::Colon)?;
                        let fexpr = self.expr()?;
                        fields.push((fname, fexpr));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    let end = self.expect(TokenKind::RBrace)?.span;
                    Ok(self.mk_expr(ExprKind::StructLit { name, fields }, start.to(end)))
                } else {
                    Ok(self.mk_expr(ExprKind::Var(name), start))
                }
            }
            other => Err(Diagnostic::error(
                format!("expected expression, found `{other}`"),
                start,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_function() {
        let p = parse_program("fn main() { }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert_eq!(p.funcs[0].ret_ty, AstTy::Unit);
        assert!(p.funcs[0].body.stmts.is_empty());
    }

    #[test]
    fn parses_params_and_return_type() {
        let p = parse_program("fn add(x: i32, y: i32) -> i32 { return x + y; }").unwrap();
        let f = &p.funcs[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "x");
        assert_eq!(f.ret_ty, AstTy::Int);
    }

    #[test]
    fn parses_lifetimes_and_where_clause() {
        let src = "fn f<'a, 'b>(x: &'a mut i32, y: &'b i32) -> &'a i32 where 'a: 'b { return x; }";
        let p = parse_program(src).unwrap();
        let f = &p.funcs[0];
        assert_eq!(f.lifetime_params, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(f.outlives_bounds, vec![("a".to_string(), "b".to_string())]);
        match &f.params[0].ty {
            AstTy::Ref {
                lifetime, mutbl, ..
            } => {
                assert_eq!(lifetime.as_deref(), Some("a"));
                assert!(mutbl.is_mut());
            }
            other => panic!("unexpected type {other:?}"),
        }
    }

    #[test]
    fn parses_struct_definition() {
        let p = parse_program("struct Point { x: i32, y: i32 }").unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields.len(), 2);
    }

    #[test]
    fn parses_struct_literal_and_field_access() {
        let src =
            "struct P { a: i32, b: i32 } fn f() -> i32 { let p = P { a: 1, b: 2 }; return p.a; }";
        let p = parse_program(src).unwrap();
        let f = &p.funcs[0];
        assert_eq!(f.body.stmts.len(), 2);
    }

    #[test]
    fn parses_tuples_and_indexing() {
        let e = parse_expr("(1, true, (2, 3)).2").unwrap();
        match e.kind {
            ExprKind::Field(base, FieldName::Index(2)) => match base.kind {
                ExprKind::Tuple(elems) => assert_eq!(elems.len(), 3),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_references_and_derefs() {
        let e = parse_expr("*&mut x").unwrap();
        match e.kind {
            ExprKind::Deref(inner) => match inner.kind {
                ExprKind::Borrow { mutbl, .. } => assert!(mutbl.is_mut()),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_of_arithmetic() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => match rhs.kind {
                ExprKind::Binary { op: BinOp::Mul, .. } => {}
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_of_logic_and_comparison() {
        let e = parse_expr("a < b && c == d || e").unwrap();
        match e.kind {
            ExprKind::Binary { op: BinOp::Or, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain() {
        let src = "fn f(x: i32) -> i32 { if x < 0 { return 0; } else if x < 10 { return 1; } else { return 2; } }";
        let p = parse_program(src).unwrap();
        match &p.funcs[0].body.stmts[0].kind {
            StmtKind::If { else_block, .. } => {
                let eb = else_block.as_ref().unwrap();
                assert!(matches!(eb.stmts[0].kind, StmtKind::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_while_loop_break_continue() {
        let src = "fn f() { let mut i = 0; while i < 10 { if i == 5 { break; } i = i + 1; } loop { continue; } }";
        let p = parse_program(src).unwrap();
        assert_eq!(p.funcs[0].body.stmts.len(), 3);
    }

    #[test]
    fn parses_assignment_to_place() {
        let src = "fn f(p: &mut (i32, i32)) { (*p).1 = 3; }";
        let p = parse_program(src).unwrap();
        match &p.funcs[0].body.stmts[0].kind {
            StmtKind::Assign { place, .. } => assert!(place.is_place()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_assignment_to_non_place() {
        assert!(parse_program("fn f() { 1 + 2 = 3; }").is_err());
    }

    #[test]
    fn parses_calls_with_arguments() {
        let src = "fn g(x: i32) -> i32 { return x; } fn f() { let a = g(1); g(a); }";
        let p = parse_program(src).unwrap();
        assert_eq!(p.funcs.len(), 2);
    }

    #[test]
    fn rejects_unterminated_block() {
        assert!(parse_program("fn f() { let x = 1;").is_err());
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse_program("fn f() { let x = 1 }").is_err());
    }

    #[test]
    fn expr_ids_are_unique() {
        let p = parse_program("fn f(x: i32) -> i32 { let y = x + x; return y * y; }").unwrap();
        let mut ids = Vec::new();
        fn collect(e: &Expr, ids: &mut Vec<u32>) {
            ids.push(e.id.0);
            match &e.kind {
                ExprKind::Field(b, _) | ExprKind::Deref(b) => collect(b, ids),
                ExprKind::Borrow { expr, .. } => collect(expr, ids),
                ExprKind::Binary { lhs, rhs, .. } => {
                    collect(lhs, ids);
                    collect(rhs, ids);
                }
                ExprKind::Unary { operand, .. } => collect(operand, ids),
                ExprKind::Call { args, .. } => args.iter().for_each(|a| collect(a, ids)),
                ExprKind::Tuple(es) => es.iter().for_each(|a| collect(a, ids)),
                ExprKind::StructLit { fields, .. } => {
                    fields.iter().for_each(|(_, a)| collect(a, ids))
                }
                _ => {}
            }
        }
        for f in &p.funcs {
            for s in &f.body.stmts {
                match &s.kind {
                    StmtKind::Let { init, .. } => collect(init, &mut ids),
                    StmtKind::Return(Some(e)) => collect(e, &mut ids),
                    _ => {}
                }
            }
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn parses_module_attributes() {
        let src = "#![lattice(multi_level)]\n#![default_label(Low)]\nfn f() { }";
        let p = parse_program(src).unwrap();
        assert_eq!(p.lattice.as_deref(), Some("multi_level"));
        assert_eq!(p.default_label.as_deref(), Some("Low"));
    }

    #[test]
    fn parses_function_and_param_labels() {
        let src = "#[label(High)] #[sink(Low)] fn f(#[label(High)] x: i32, y: i32) -> i32 { return x + y; }";
        let p = parse_program(src).unwrap();
        let f = &p.funcs[0];
        assert_eq!(f.label.as_deref(), Some("High"));
        assert_eq!(f.clearance.as_deref(), Some("Low"));
        assert_eq!(f.params[0].label.as_deref(), Some("High"));
        assert_eq!(f.params[1].label, None);
    }

    #[test]
    fn parses_declassify_let() {
        let src = "fn g() -> i32 { return 1; }
                   fn f() -> i32 { #[declassify] let x = g(); return x; }";
        let p = parse_program(src).unwrap();
        match &p.funcs[1].body.stmts[0].kind {
            StmtKind::Let { declassify, .. } => assert!(declassify),
            other => panic!("unexpected {other:?}"),
        }
        match &p.funcs[1].body.stmts[1].kind {
            StmtKind::Return(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_declassify_of_non_call() {
        let err = parse_program("fn f() { #[declassify] let x = 1; }").unwrap_err();
        assert!(err.message.contains("function call"), "{}", err.message);
    }

    #[test]
    fn rejects_declassify_before_non_let() {
        let err = parse_program("fn f() { #[declassify] return; }").unwrap_err();
        assert!(err.message.contains("`let`"), "{}", err.message);
    }

    #[test]
    fn rejects_unknown_attributes() {
        assert!(parse_program("#![frobnicate(x)] fn f() { }").is_err());
        assert!(parse_program("#[frobnicate] fn f() { }").is_err());
        assert!(parse_program("fn f(#[sink(Low)] x: i32) { }").is_err());
        // Inner attributes after the first item are rejected.
        assert!(parse_program("fn f() { } #![lattice(two_point)]").is_err());
    }

    #[test]
    fn parses_effect_attributes() {
        let src = "#[effect(pure)] fn one() -> i32 { return 1; }
                   #[effect(reads(x, y), writes(p))]
                   fn f(x: i32, y: i32, p: &mut i32) { *p = x + y; }";
        let p = parse_program(src).unwrap();
        let one = p.funcs[0].effect.as_ref().unwrap();
        assert!(one.pure);
        assert!(one.reads.is_empty() && one.writes.is_empty());
        let f = p.funcs[1].effect.as_ref().unwrap();
        assert!(!f.pure);
        assert_eq!(f.reads, vec!["x".to_string(), "y".to_string()]);
        assert_eq!(f.writes, vec!["p".to_string()]);
    }

    #[test]
    fn repeated_effect_attributes_accumulate() {
        let src =
            "#[effect(reads(x))] #[effect(reads(y))] fn f(x: i32, y: i32) -> i32 { return x + y; }";
        let p = parse_program(src).unwrap();
        let eff = p.funcs[0].effect.as_ref().unwrap();
        assert_eq!(eff.reads, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn parses_module_membership_and_policy() {
        let src = "#![lattice(two_point)]
                   #![module_policy(audit, label(Secret), sink(Public))]
                   #[module(audit)] fn f() -> i32 { return 1; }
                   fn g() { }";
        let p = parse_program(src).unwrap();
        assert_eq!(p.module_policies.len(), 1);
        let mp = &p.module_policies[0];
        assert_eq!(mp.name, "audit");
        assert_eq!(mp.label.as_deref(), Some("Secret"));
        assert_eq!(mp.clearance.as_deref(), Some("Public"));
        assert_eq!(p.funcs[0].module.as_deref(), Some("audit"));
        assert_eq!(p.funcs[1].module, None);
    }

    #[test]
    fn module_policy_clauses_are_optional() {
        let p = parse_program("#![module_policy(io)] fn f() { }").unwrap();
        assert_eq!(p.module_policies[0].name, "io");
        assert!(p.module_policies[0].label.is_none());
        assert!(p.module_policies[0].clearance.is_none());
    }

    #[test]
    fn rejects_malformed_effect_attributes() {
        // Every row must produce a spanned diagnostic, never a panic.
        let gauntlet = [
            "#[effect] fn f() { }",
            "#[effect()] fn f() { }",
            "#[effect(frobnicate)] fn f() { }",
            "#[effect(reads)] fn f(x: i32) { }",
            "#[effect(reads())] fn f(x: i32) { }",
            "#[effect(reads(x,))] fn f(x: i32) { }",
            "#[effect(reads(x) writes(x))] fn f(x: &mut i32) { }",
            "#[effect(pure, writes(p))] fn f(p: &mut i32) { }",
            "#[effect(pure)] #[effect(writes(p))] fn f(p: &mut i32) { }",
            "#[effect(reads(1))] fn f() { }",
            "#[effect(pure] fn f() { }",
            "#[effect(pure)) fn f() { }",
        ];
        for src in gauntlet {
            let err = parse_program(src).unwrap_err();
            assert!(err.span.lo <= err.span.hi, "bad span for {src:?}");
        }
    }

    #[test]
    fn rejects_malformed_module_attributes() {
        let gauntlet = [
            "#[module] fn f() { }",
            "#[module()] fn f() { }",
            "#[module(a, b)] fn f() { }",
            "#![module_policy] fn f() { }",
            "#![module_policy()] fn f() { }",
            "#![module_policy(m, frobnicate(x))] fn f() { }",
            "#![module_policy(m, label)] fn f() { }",
            "#![module_policy(m, label())] fn f() { }",
            "#![module_policy(m, sink(Low), )] fn f() { }",
            "#![module_policy(m label(L))] fn f() { }",
            "fn f() { } #![module_policy(m)]",
        ];
        for src in gauntlet {
            let err = parse_program(src).unwrap_err();
            assert!(err.span.lo <= err.span.hi, "bad span for {src:?}");
        }
    }

    #[test]
    fn single_element_paren_is_not_tuple() {
        let e = parse_expr("(5)").unwrap();
        assert!(matches!(e.kind, ExprKind::Int(5)));
    }

    #[test]
    fn parses_unit_expression() {
        let e = parse_expr("()").unwrap();
        assert!(matches!(e.kind, ExprKind::Unit));
    }
}
