//! Loan-set computation (paper §2.2 and §4.2).
//!
//! For every region variable `r` of a body we compute its loan set Γ(r): the
//! set of place expressions the references with provenance `r` may point to.
//!
//! * Each borrow statement `_x = &'r p` seeds Γ(r) with `{p}`.
//! * Each **universal** region (a lifetime from the function signature) is
//!   seeded with the opaque dereference places of the arguments that carry
//!   it: for an argument `p: &'a mut T`, Γ('a) ⊇ {(*p)}. This models "the
//!   loans the caller passed in", which the body cannot name concretely.
//! * Constraints `r1 :> r2` propagate Γ(r1) ⊆ Γ(r2) until fixpoint, exactly
//!   the iteration described in §4.2.

use crate::mir::{Body, Place, PlaceElem, Rvalue, StatementKind};
use crate::types::{RegionVid, StructTable, Ty};
use std::collections::BTreeSet;

/// The loan sets Γ of one body, indexed by [`RegionVid`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoanSets {
    sets: Vec<BTreeSet<Place>>,
}

impl LoanSets {
    /// The loan set of region `r`.
    pub fn loans(&self, r: RegionVid) -> &BTreeSet<Place> {
        &self.sets[r.0 as usize]
    }

    /// Whether region `r` has any loans.
    pub fn is_empty(&self, r: RegionVid) -> bool {
        self.sets[r.0 as usize].is_empty()
    }

    /// Number of regions covered.
    pub fn region_count(&self) -> usize {
        self.sets.len()
    }

    /// Iterates over `(region, loan set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RegionVid, &BTreeSet<Place>)> {
        self.sets
            .iter()
            .enumerate()
            .map(|(i, s)| (RegionVid(i as u32), s))
    }
}

/// Computes the loan sets of `body`.
///
/// [`crate::regions::infer_regions`] must have installed the body's outlives
/// constraints first; otherwise only the seeding step has any effect.
pub fn compute_loans(body: &Body, structs: &StructTable) -> LoanSets {
    let mut sets: Vec<BTreeSet<Place>> = vec![BTreeSet::new(); body.regions.len()];

    // Seed from borrow expressions.
    for bb in body.block_ids() {
        for stmt in &body.block(bb).statements {
            if let StatementKind::Assign(_, Rvalue::Ref { region, place, .. }) = &stmt.kind {
                sets[region.0 as usize].insert(place.clone());
            }
        }
    }

    // Seed universal regions from the argument types.
    for arg in body.args() {
        let ty = body.local_decl(arg).ty.clone();
        seed_universal(body, &Place::from_local(arg), &ty, &mut sets);
    }

    // Propagate along `longer :> shorter` (Γ(shorter) ⊇ Γ(longer)) and
    // resolve dereferences inside loan places (the §2.2 worked example:
    // Γ(r3) for `&mut (*y).1` contains both `(*y).1` and `x.1`). The two
    // steps feed each other, so iterate them together to a fixpoint.
    const MAX_PROJECTION_LEN: usize = 8;
    const MAX_ROUNDS: usize = 64;
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < MAX_ROUNDS {
        changed = false;
        rounds += 1;
        for c in &body.outlives {
            if c.longer == c.shorter {
                continue;
            }
            let (longer, shorter) = (c.longer.0 as usize, c.shorter.0 as usize);
            if longer >= sets.len() || shorter >= sets.len() {
                continue;
            }
            let additions: Vec<Place> = sets[longer]
                .iter()
                .filter(|p| !sets[shorter].contains(*p))
                .cloned()
                .collect();
            if !additions.is_empty() {
                sets[shorter].extend(additions);
                changed = true;
            }
        }

        // Deref expansion: a loan `(*q).rest` where `q: &'r T` additionally
        // yields `l.rest` for every loan `l ∈ Γ('r)`. Loan sets can mix
        // loans of different shapes (a universal region holds both the
        // opaque `(*p)` and borrowed sub-places propagated into it), so an
        // expansion is kept only if it is well-typed and has the same shape
        // as the loan it came from — otherwise `(*p).0` expanded through
        // base `(*p).1` would fabricate places like `(*p).1.0` that name no
        // real memory.
        for region_idx in 0..sets.len() {
            let mut additions = Vec::new();
            for loan in &sets[region_idx] {
                let Some(deref_pos) = loan.projection.iter().position(|e| *e == PlaceElem::Deref)
                else {
                    continue;
                };
                let pointer = Place {
                    local: loan.local,
                    projection: loan.projection[..deref_pos].to_vec(),
                };
                let suffix = &loan.projection[deref_pos + 1..];
                let Some(Ty::Ref(pointer_region, _, _)) = body.try_place_ty(&pointer, structs)
                else {
                    continue;
                };
                let Some(loan_ty) = body.try_place_ty(loan, structs) else {
                    continue;
                };
                for base in &sets[pointer_region.0 as usize] {
                    if base == loan {
                        continue;
                    }
                    let mut projection = base.projection.clone();
                    projection.extend_from_slice(suffix);
                    if projection.len() > MAX_PROJECTION_LEN {
                        continue;
                    }
                    let expanded = Place {
                        local: base.local,
                        projection,
                    };
                    let well_typed = body
                        .try_place_ty(&expanded, structs)
                        .is_some_and(|t| t.compatible(&loan_ty));
                    if well_typed && !sets[region_idx].contains(&expanded) {
                        additions.push(expanded);
                    }
                }
            }
            if !additions.is_empty() {
                sets[region_idx].extend(additions);
                changed = true;
            }
        }
    }

    LoanSets { sets }
}

/// Seeds Γ(r) ⊇ {(*path)} for every reference position with universal region
/// `r` reachable inside an argument's type.
fn seed_universal(body: &Body, place: &Place, ty: &Ty, sets: &mut Vec<BTreeSet<Place>>) {
    match ty {
        Ty::Ref(r, _, inner) => {
            let deref_place = place.project(PlaceElem::Deref);
            if body
                .regions
                .get(r.0 as usize)
                .is_some_and(|data| data.is_universal)
            {
                sets[r.0 as usize].insert(deref_place.clone());
            }
            seed_universal(body, &deref_place, inner, sets);
        }
        Ty::Tuple(tys) => {
            for (i, t) in tys.iter().enumerate() {
                seed_universal(body, &place.field(i as u32), t, sets);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::mir::Local;

    fn compiled(src: &str) -> crate::CompiledProgram {
        compile(src).expect("compile failure")
    }

    fn body<'a>(prog: &'a crate::CompiledProgram, name: &str) -> &'a Body {
        prog.bodies.iter().find(|b| b.name == name).unwrap()
    }

    #[test]
    fn borrow_seeds_loan_set() {
        let prog = compiled("fn f() { let mut x = 1; let r = &mut x; *r = 2; }");
        let b = body(&prog, "f");
        let loans = compute_loans(b, &prog.structs);
        // Some region's loan set contains the place of x.
        let x_local = b
            .local_decls
            .iter()
            .position(|d| d.name.as_deref() == Some("x"))
            .unwrap();
        let x_place = Place::from_local(Local(x_local as u32));
        assert!(loans.iter().any(|(_, set)| set.contains(&x_place)));
    }

    #[test]
    fn propagation_follows_reborrows() {
        // The §2.2 example: z reborrows a field of *y which borrows x, so the
        // loan set of z's region must contain x.1.
        let prog = compiled(
            "fn f() {
                let mut x = (0, 0);
                let y = &mut x;
                let z = &mut (*y).1;
                *z = 1;
            }",
        );
        let b = body(&prog, "f");
        let loans = compute_loans(b, &prog.structs);
        let x_local = b
            .local_decls
            .iter()
            .position(|d| d.name.as_deref() == Some("x"))
            .unwrap();
        let z_local = b
            .local_decls
            .iter()
            .position(|d| d.name.as_deref() == Some("z"))
            .unwrap();
        let x_place = Place::from_local(Local(x_local as u32));
        // The region of z's type must (transitively) have a loan rooted at x.
        let z_ty = &b.local_decl(Local(z_local as u32)).ty;
        let z_region = z_ty.regions()[0];
        let rooted_at_x = loans
            .loans(z_region)
            .iter()
            .any(|p| p.local == x_place.local);
        assert!(
            rooted_at_x,
            "loans of z's region: {:?}",
            loans.loans(z_region)
        );
    }

    #[test]
    fn universal_regions_get_opaque_deref_loans() {
        let prog = compiled("fn f<'a>(p: &'a mut (i32, i32)) { (*p).0 = 1; }");
        let b = body(&prog, "f");
        let loans = compute_loans(b, &prog.structs);
        let expected = Place::from_local(Local(1)).deref();
        assert!(loans.loans(RegionVid(0)).contains(&expected));
    }

    #[test]
    fn nested_argument_references_are_seeded() {
        let prog = compiled("fn f<'a, 'b>(t: (&'a mut i32, &'b i32)) { *t.0 = 1; }");
        let b = body(&prog, "f");
        let loans = compute_loans(b, &prog.structs);
        let t = Place::from_local(Local(1));
        assert!(loans.loans(RegionVid(0)).contains(&t.field(0).deref()));
        assert!(loans.loans(RegionVid(1)).contains(&t.field(1).deref()));
    }

    #[test]
    fn call_returning_reference_aliases_argument() {
        let prog = compiled(
            "fn get<'a>(p: &'a mut (i32, i32)) -> &'a mut i32 { return &mut (*p).0; }
             fn caller() { let mut t = (1, 2); let r = get(&mut t); *r = 5; }",
        );
        let b = body(&prog, "caller");
        let loans = compute_loans(b, &prog.structs);
        let t_local = b
            .local_decls
            .iter()
            .position(|d| d.name.as_deref() == Some("t"))
            .unwrap() as u32;
        let r_local = b
            .local_decls
            .iter()
            .position(|d| d.name.as_deref() == Some("r"))
            .unwrap() as u32;
        let r_region = b.local_decl(Local(r_local)).ty.regions()[0];
        let has_t = loans
            .loans(r_region)
            .iter()
            .any(|p| p.local == Local(t_local));
        assert!(
            has_t,
            "expected the returned reference to alias t, got {:?}",
            loans.loans(r_region)
        );
    }

    #[test]
    fn scalar_bodies_have_empty_loans() {
        let prog = compiled("fn f(x: i32) -> i32 { return x + 1; }");
        let b = body(&prog, "f");
        let loans = compute_loans(b, &prog.structs);
        for (_, set) in loans.iter() {
            assert!(set.is_empty());
        }
    }
}
