//! # flowistry-lang: the Rox language front-end
//!
//! This crate is the substrate of the Flowistry reproduction (see the
//! repository's DESIGN.md): a small ownership-typed Rust subset — **Rox** —
//! with everything the information flow analysis of
//! *Modular Information Flow through Ownership* (PLDI 2022) needs from a
//! compiler:
//!
//! * a [`lexer`], [`parser`] and [`ast`] for the surface syntax;
//! * a [`typeck`] pass producing per-expression types and function
//!   signatures with abstract provenances;
//! * a [`mir`] control-flow-graph representation and [`lower`]ing into it;
//! * [`regions`] (outlives-constraint inference) and [`loans`] (loan-set
//!   computation), the two ingredients of §4.2 of the paper;
//! * a simplified [`borrowck`] enforcing the shared-XOR-mutable discipline.
//!
//! The entry point is [`compile`]:
//!
//! ```
//! let program = flowistry_lang::compile(
//!     "fn add(x: i32, y: i32) -> i32 { return x + y; }",
//! ).unwrap();
//! assert_eq!(program.bodies.len(), 1);
//! assert_eq!(program.bodies[0].name, "add");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod borrowck;
pub mod callgraph;
pub mod lexer;
pub mod loans;
pub mod lower;
pub mod mir;
pub mod parser;
pub mod regions;
pub mod span;
pub mod stable_hash;
pub mod typeck;
pub mod types;

pub use callgraph::CallGraph;
pub use stable_hash::{function_content_hash, StableHasher};

use crate::mir::Body;
use crate::span::Diagnostic;
use crate::types::{FnSig, FuncId, StructTable};

/// A fully compiled Rox program: AST, signatures, struct table and one MIR
/// [`Body`] per function, with region constraints installed.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The original source text.
    pub source: String,
    /// The parsed AST.
    pub ast: ast::Program,
    /// Resolved struct definitions.
    pub structs: StructTable,
    /// One signature per function, indexed by [`FuncId`].
    pub signatures: Vec<FnSig>,
    /// One MIR body per function, indexed by [`FuncId`].
    pub bodies: Vec<Body>,
    /// Borrow-check diagnostics (empty for ownership-safe programs). These
    /// are reported but do not abort compilation; see [`compile_strict`].
    pub borrow_errors: Vec<Diagnostic>,
}

impl CompiledProgram {
    /// Looks up a function id by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.signatures
            .iter()
            .position(|s| s.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// The body of function `id`.
    pub fn body(&self, id: FuncId) -> &Body {
        &self.bodies[id.0 as usize]
    }

    /// The signature of function `id`.
    pub fn signature(&self, id: FuncId) -> &FnSig {
        &self.signatures[id.0 as usize]
    }

    /// Finds a body by function name.
    pub fn body_by_name(&self, name: &str) -> Option<&Body> {
        self.bodies.iter().find(|b| b.name == name)
    }

    /// Total number of MIR instructions across all bodies.
    pub fn total_instructions(&self) -> usize {
        self.bodies.iter().map(Body::instruction_count).sum()
    }

    /// Number of lines in the source (the paper's LOC metric).
    pub fn loc(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

/// Compiles Rox source: parse, type check, lower to MIR, infer regions and
/// run the borrow checker (whose diagnostics are collected, not fatal).
///
/// # Errors
///
/// Returns the first lexing, parsing or type error.
///
/// # Examples
///
/// ```
/// let prog = flowistry_lang::compile(
///     "fn get<'a>(p: &'a mut (i32, i32)) -> &'a mut i32 { return &mut (*p).0; }",
/// ).unwrap();
/// assert_eq!(prog.signatures[0].region_count, 1);
/// ```
pub fn compile(source: &str) -> Result<CompiledProgram, Diagnostic> {
    let ast = parser::parse_program(source)?;
    let typeck = typeck::check_program(&ast)?;

    let mut bodies = Vec::with_capacity(ast.funcs.len());
    for (idx, func) in ast.funcs.iter().enumerate() {
        let body = lower::lower_fn(
            func,
            FuncId(idx as u32),
            &typeck.signatures[idx],
            &typeck.fn_tables[idx],
            &typeck.structs,
        );
        bodies.push(body);
    }

    regions::infer_regions(&mut bodies, &typeck.signatures, &typeck.structs);

    let mut borrow_errors = Vec::new();
    for body in &bodies {
        borrow_errors.extend(borrowck::check_body(body));
    }

    Ok(CompiledProgram {
        source: source.to_string(),
        ast,
        structs: typeck.structs,
        signatures: typeck.signatures,
        bodies,
        borrow_errors,
    })
}

/// Like [`compile`], but treats borrow-check diagnostics as fatal.
///
/// # Errors
///
/// Returns the first diagnostic from any stage, including borrow checking.
pub fn compile_strict(source: &str) -> Result<CompiledProgram, Diagnostic> {
    let prog = compile(source)?;
    if let Some(err) = prog.borrow_errors.first() {
        return Err(err.clone());
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_end_to_end() {
        let prog = compile(
            "struct Point { x: i32, y: i32 }
             fn origin() -> Point { return Point { x: 0, y: 0 }; }
             fn shift(p: &mut Point, dx: i32) { (*p).x = (*p).x + dx; }
             fn main() -> i32 { let mut p = origin(); shift(&mut p, 3); return p.x; }",
        )
        .unwrap();
        assert_eq!(prog.bodies.len(), 3);
        assert_eq!(prog.structs.len(), 1);
        assert!(prog.borrow_errors.is_empty());
        assert!(prog.total_instructions() > 5);
        assert!(prog.loc() >= 4);
        assert_eq!(prog.func_id("shift"), Some(FuncId(1)));
        assert_eq!(prog.body(FuncId(2)).name, "main");
        assert_eq!(prog.signature(FuncId(0)).name, "origin");
        assert!(prog.body_by_name("main").is_some());
        assert!(prog.body_by_name("missing").is_none());
    }

    #[test]
    fn compile_reports_parse_errors() {
        assert!(compile("fn f( {").is_err());
    }

    #[test]
    fn compile_reports_type_errors() {
        assert!(compile("fn f() { let x: bool = 1; }").is_err());
    }

    #[test]
    fn compile_strict_rejects_borrow_violations() {
        let src = "fn f() -> i32 { let mut x = 1; let r = &x; x = 2; return *r; }";
        assert!(compile(src).is_ok());
        assert!(compile_strict(src).is_err());
    }

    #[test]
    fn figure_one_get_count_analogue_compiles() {
        // The paper's Figure 1 example, adapted to Rox: a "map" is a pair of
        // slots and the key selects one of them.
        let src = "
            fn contains_key(h: &(i32, i32), k: i32) -> bool { return k == 0 || k == 1; }
            fn insert(h: &mut (i32, i32), k: i32, v: i32) {
                if k == 0 { (*h).0 = v; } else { (*h).1 = v; }
            }
            fn get(h: &(i32, i32), k: i32) -> i32 {
                if k == 0 { return (*h).0; }
                return (*h).1;
            }
            fn get_count(h: &mut (i32, i32), k: i32) -> i32 {
                if !contains_key(h, k) {
                    insert(h, k, 0);
                    return 0;
                }
                return get(h, k);
            }
        ";
        let prog = compile(src).unwrap();
        assert_eq!(prog.bodies.len(), 4);
        assert!(prog.borrow_errors.is_empty(), "{:?}", prog.borrow_errors);
        let body = prog.body_by_name("get_count").unwrap();
        assert!(body.instruction_count() >= 6);
    }
}
