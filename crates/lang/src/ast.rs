//! Abstract syntax tree for the Rox surface language.
//!
//! The AST mirrors the fragment of Rust the paper's analysis targets:
//! functions with lifetime parameters and outlives bounds, structs, tuples,
//! shared and unique references, field and dereference places, `let`
//! bindings, assignments, conditionals, loops and function calls.
//!
//! Every expression carries a unique [`ExprId`] assigned by the parser; the
//! type checker records per-expression types in a side table keyed by these
//! ids (see [`crate::typeck`]).

use crate::span::Span;
use std::fmt;

/// Unique id of an expression node within a parsed program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// Mutability qualifier: the paper's ownership qualifier ω (`shrd`/`uniq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mutability {
    /// Shared / immutable (`shrd` in Oxide, `&T` in Rust).
    Shared,
    /// Unique / mutable (`uniq` in Oxide, `&mut T` in Rust).
    Mut,
}

impl Mutability {
    /// Whether this is the unique (mutable) qualifier.
    pub fn is_mut(self) -> bool {
        matches!(self, Mutability::Mut)
    }
}

impl fmt::Display for Mutability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutability::Shared => write!(f, "shrd"),
            Mutability::Mut => write!(f, "uniq"),
        }
    }
}

/// A surface-syntax type annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AstTy {
    /// `()`
    Unit,
    /// `i32` (also covers `u32`/`usize` in the lexer)
    Int,
    /// `bool`
    Bool,
    /// `(T1, T2, ...)`
    Tuple(Vec<AstTy>),
    /// A named struct type.
    Named(String),
    /// `&'a T` or `&'a mut T`; the lifetime is optional (elided).
    Ref {
        /// Optional named lifetime, e.g. `a` for `'a`.
        lifetime: Option<String>,
        /// Shared or unique.
        mutbl: Mutability,
        /// The referent type.
        inner: Box<AstTy>,
    },
}

impl fmt::Display for AstTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstTy::Unit => write!(f, "()"),
            AstTy::Int => write!(f, "i32"),
            AstTy::Bool => write!(f, "bool"),
            AstTy::Tuple(tys) => {
                write!(f, "(")?;
                for (i, t) in tys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            AstTy::Named(n) => write!(f, "{n}"),
            AstTy::Ref {
                lifetime,
                mutbl,
                inner,
            } => {
                write!(f, "&")?;
                if let Some(lt) = lifetime {
                    write!(f, "'{lt} ")?;
                }
                if mutbl.is_mut() {
                    write!(f, "mut ")?;
                }
                write!(f, "{inner}")
            }
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (evaluated strictly; see DESIGN.md)
    And,
    /// `||` (evaluated strictly)
    Or,
}

impl BinOp {
    /// Whether the operator produces a boolean result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether the operator takes boolean operands.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "!"),
        }
    }
}

/// A field access: positional (tuple) or named (struct).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldName {
    /// Tuple index, e.g. `.0`.
    Index(u32),
    /// Struct field name, e.g. `.count`.
    Named(String),
}

impl fmt::Display for FieldName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldName::Index(i) => write!(f, "{i}"),
            FieldName::Named(n) => write!(f, "{n}"),
        }
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Unique id, used to key the type checker's side tables.
    pub id: ExprId,
    /// The expression itself.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// The different kinds of expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// `()`
    Unit,
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// A variable reference.
    Var(String),
    /// Field projection `e.f`.
    Field(Box<Expr>, FieldName),
    /// Dereference `*e`.
    Deref(Box<Expr>),
    /// Borrow `&e` / `&mut e`.
    Borrow {
        /// Shared or unique borrow.
        mutbl: Mutability,
        /// The borrowed place expression.
        expr: Box<Expr>,
    },
    /// Function call `f(a, b)`.
    Call {
        /// Callee name.
        callee: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Tuple constructor `(a, b, c)`.
    Tuple(Vec<Expr>),
    /// Struct literal `Name { field: expr, ... }`.
    StructLit {
        /// Struct name.
        name: String,
        /// Field initializers, in source order.
        fields: Vec<(String, Expr)>,
    },
}

impl Expr {
    /// Whether this expression is syntactically a place expression (a path of
    /// field projections and dereferences rooted at a variable).
    pub fn is_place(&self) -> bool {
        match &self.kind {
            ExprKind::Var(_) => true,
            ExprKind::Field(base, _) | ExprKind::Deref(base) => base.is_place(),
            _ => false,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// The statement itself.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// The different kinds of statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `[#[declassify]] let [mut] x [: T] = e;`
    Let {
        /// Bound variable name.
        name: String,
        /// Whether declared `mut`.
        mutable: bool,
        /// Optional type annotation.
        ty: Option<AstTy>,
        /// Initializer.
        init: Expr,
        /// Whether the binding carries a `#[declassify]` attribute: the
        /// initializer (a call) is a sanctioned release point whose result
        /// is relabeled to the lattice bottom.
        declassify: bool,
    },
    /// `place = e;`
    Assign {
        /// Left-hand side (must be a place expression).
        place: Expr,
        /// Right-hand side.
        value: Expr,
    },
    /// `if cond { ... } [else { ... }]`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Optional else branch.
        else_block: Option<Block>,
    },
    /// `while cond { ... }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `loop { ... }`
    Loop {
        /// Loop body.
        body: Block,
    },
    /// `return;` or `return e;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// An expression evaluated for effect, e.g. a call: `f(x);`
    Expr(Expr),
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
    /// Source location of the whole block.
    pub span: Span,
}

/// A declared effect contract from `#[effect(...)]` clauses on a function.
///
/// The contract direction is caller-facing: the function promises to read
/// at most `reads`, write through at most `writes`, and — when `pure` — to
/// perform no caller-visible mutation and reach no sink. The lint layer
/// checks each declaration against the effect signature *inferred* from the
/// function summary (see `flowistry-lint`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EffectDecl {
    /// `#[effect(pure)]`: no caller-visible mutations, no sink reachability.
    pub pure: bool,
    /// Parameters the function may read (`#[effect(reads(a, b))]`).
    pub reads: Vec<String>,
    /// Parameters the function may write through (`#[effect(writes(p))]`).
    pub writes: Vec<String>,
}

/// A `#![module_policy(name, ...)]` header: default IFC policy entries for
/// every function tagged `#[module(name)]`. Explicit `#[label]` / `#[sink]`
/// attributes on a function win over its module's defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModulePolicy {
    /// The module name functions opt into with `#[module(name)]`.
    pub name: String,
    /// Default result label for the module's functions (`label(L)` clause).
    pub label: Option<String>,
    /// Default sink clearance for the module's functions (`sink(C)` clause).
    pub clearance: Option<String>,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: AstTy,
    /// Security label from a `#[label(L)]` parameter attribute.
    pub label: Option<String>,
    /// Source location.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Declared lifetime parameters, e.g. `["a", "b"]` for `<'a, 'b>`.
    pub lifetime_params: Vec<String>,
    /// `where 'a: 'b` outlives bounds as `(long, short)` pairs.
    pub outlives_bounds: Vec<(String, String)>,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// Return type (`()` when omitted).
    pub ret_ty: AstTy,
    /// Function body.
    pub body: Block,
    /// Security label of the data this function produces, from a
    /// `#[label(L)]` function attribute.
    pub label: Option<String>,
    /// Sink clearance — the highest label this function may observe — from
    /// a `#[sink(L)]` function attribute.
    pub clearance: Option<String>,
    /// Declared effect contract from `#[effect(...)]` attributes.
    pub effect: Option<EffectDecl>,
    /// Module membership from a `#[module(name)]` attribute; functions in a
    /// module inherit its `#![module_policy(...)]` defaults.
    pub module: Option<String>,
    /// Source location of the whole definition.
    pub span: Span,
}

/// A struct definition. Struct fields must be reference-free (see DESIGN.md).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields, in declaration order.
    pub fields: Vec<(String, AstTy)>,
    /// Source location.
    pub span: Span,
}

/// A complete parsed program: struct definitions and function definitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Struct definitions, in source order.
    pub structs: Vec<StructDef>,
    /// Function definitions, in source order.
    pub funcs: Vec<FnDef>,
    /// The security lattice named by a `#![lattice(L)]` inner attribute
    /// (`two_point`, `multi_level`, `conf_integrity`, …).
    pub lattice: Option<String>,
    /// Module-wide default label from `#![default_label(L)]`.
    pub default_label: Option<String>,
    /// Per-module policy headers from `#![module_policy(name, ...)]`.
    pub module_policies: Vec<ModulePolicy>,
}

impl Program {
    /// Looks up a function definition by name.
    pub fn func(&self, name: &str) -> Option<&FnDef> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Looks up a struct definition by name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(kind: ExprKind) -> Expr {
        Expr {
            id: ExprId(0),
            kind,
            span: Span::DUMMY,
        }
    }

    #[test]
    fn place_expressions() {
        let var = expr(ExprKind::Var("x".into()));
        assert!(var.is_place());
        let field = expr(ExprKind::Field(
            Box::new(expr(ExprKind::Var("x".into()))),
            FieldName::Index(0),
        ));
        assert!(field.is_place());
        let deref = expr(ExprKind::Deref(Box::new(expr(ExprKind::Var("p".into())))));
        assert!(deref.is_place());
        let call = expr(ExprKind::Call {
            callee: "f".into(),
            args: vec![],
        });
        assert!(!call.is_place());
        let lit = expr(ExprKind::Int(3));
        assert!(!lit.is_place());
    }

    #[test]
    fn mutability_display() {
        assert_eq!(Mutability::Shared.to_string(), "shrd");
        assert_eq!(Mutability::Mut.to_string(), "uniq");
        assert!(Mutability::Mut.is_mut());
        assert!(!Mutability::Shared.is_mut());
    }

    #[test]
    fn ast_ty_display() {
        let t = AstTy::Ref {
            lifetime: Some("a".into()),
            mutbl: Mutability::Mut,
            inner: Box::new(AstTy::Tuple(vec![AstTy::Int, AstTy::Bool])),
        };
        assert_eq!(t.to_string(), "&'a mut (i32, bool)");
        assert_eq!(AstTy::Unit.to_string(), "()");
        assert_eq!(AstTy::Named("Point".into()).to_string(), "Point");
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Lt.is_logical());
    }

    #[test]
    fn program_lookup() {
        let p = Program {
            structs: vec![StructDef {
                name: "Point".into(),
                fields: vec![("x".into(), AstTy::Int)],
                span: Span::DUMMY,
            }],
            funcs: vec![FnDef {
                name: "main".into(),
                lifetime_params: vec![],
                outlives_bounds: vec![],
                params: vec![],
                ret_ty: AstTy::Unit,
                body: Block {
                    stmts: vec![],
                    span: Span::DUMMY,
                },
                label: None,
                clearance: None,
                effect: None,
                module: None,
                span: Span::DUMMY,
            }],
            lattice: None,
            default_label: None,
            module_policies: vec![],
        };
        assert!(p.func("main").is_some());
        assert!(p.func("missing").is_none());
        assert!(p.struct_def("Point").is_some());
        assert!(p.struct_def("Line").is_none());
    }
}
