//! Type checker for Rox.
//!
//! The checker validates a parsed [`Program`] and produces, per function, a
//! [`FnTypeck`] table used by MIR lowering: the type of every expression, the
//! resolution of every variable use to a binding, and the declared function
//! signatures (the [`FnSig`]s that the modular analysis of paper §2.3 is
//! allowed to consult).
//!
//! Types produced here have [`RegionVid::ERASED`] in every reference
//! position except inside [`FnSig`]s, where regions index the signature's
//! abstract provenances. Concrete region variables are introduced later by
//! MIR lowering and constrained by [`crate::regions`].

use crate::ast::*;
use crate::span::{Diagnostic, Span};
use crate::types::{FnSig, FuncId, RegionVid, StructData, StructTable, Ty};
use std::collections::HashMap;

/// Id of a variable binding (parameter or `let`) within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Per-function type checking results consumed by MIR lowering.
#[derive(Debug, Clone, Default)]
pub struct FnTypeck {
    /// Type of every expression in the function body (erased regions).
    pub expr_tys: HashMap<ExprId, Ty>,
    /// Resolution of every `Var` expression to its binding.
    pub expr_vars: HashMap<ExprId, VarId>,
    /// For each `let` statement (keyed by the id of its initializer
    /// expression), the binding it introduces.
    pub let_vars: HashMap<ExprId, VarId>,
    /// Type of each binding.
    pub var_tys: Vec<Ty>,
    /// Name of each binding.
    pub var_names: Vec<String>,
    /// Mutability of each binding.
    pub var_mut: Vec<bool>,
    /// Bindings of the function parameters, in order.
    pub param_vars: Vec<VarId>,
    /// Resolution of every `Call` expression to the callee's id.
    pub call_resolutions: HashMap<ExprId, FuncId>,
}

/// Whole-program type checking results.
#[derive(Debug, Clone)]
pub struct TypeckResults {
    /// Resolved struct definitions.
    pub structs: StructTable,
    /// One signature per function, indexed by [`FuncId`].
    pub signatures: Vec<FnSig>,
    /// Per-function tables, indexed by [`FuncId`].
    pub fn_tables: Vec<FnTypeck>,
}

impl TypeckResults {
    /// Finds a function id by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.signatures
            .iter()
            .position(|s| s.name == name)
            .map(|i| FuncId(i as u32))
    }
}

/// Type checks a parsed program.
///
/// # Errors
///
/// Returns the first type error found (unknown names, type mismatches,
/// mutability violations, arity errors, missing returns, references in struct
/// fields, unknown lifetimes).
pub fn check_program(program: &Program) -> Result<TypeckResults, Diagnostic> {
    let structs = build_struct_table(program)?;
    let signatures = build_signatures(program, &structs)?;

    let mut fn_tables = Vec::with_capacity(program.funcs.len());
    for (idx, func) in program.funcs.iter().enumerate() {
        let mut cx = FnChecker {
            structs: &structs,
            signatures: &signatures,
            program,
            sig: &signatures[idx],
            func,
            table: FnTypeck::default(),
            scopes: vec![HashMap::new()],
            loop_depth: 0,
        };
        cx.check_fn()?;
        fn_tables.push(cx.table);
    }

    Ok(TypeckResults {
        structs,
        signatures,
        fn_tables,
    })
}

fn build_struct_table(program: &Program) -> Result<StructTable, Diagnostic> {
    // Two passes so structs can reference each other regardless of order.
    let mut table = StructTable::new();
    for s in &program.structs {
        if table.lookup(&s.name).is_some() {
            return Err(Diagnostic::error(
                format!("duplicate struct definition `{}`", s.name),
                s.span,
            ));
        }
        table.push(StructData {
            name: s.name.clone(),
            fields: Vec::new(),
        });
    }
    let mut resolved = Vec::new();
    for s in &program.structs {
        let mut fields = Vec::new();
        for (fname, fty) in &s.fields {
            if matches!(fty, AstTy::Ref { .. }) {
                return Err(Diagnostic::error(
                    format!(
                        "struct field `{}.{fname}` has a reference type; struct fields must be reference-free (see DESIGN.md)",
                        s.name
                    ),
                    s.span,
                ));
            }
            let ty = ast_ty_to_ty(fty, &table, &mut |_| {
                Err(Diagnostic::error(
                    "lifetimes are not allowed in struct fields",
                    s.span,
                ))
            })?;
            if ty.contains_ref() {
                return Err(Diagnostic::error(
                    format!(
                        "struct field `{}.{fname}` contains a reference type",
                        s.name
                    ),
                    s.span,
                ));
            }
            if fields.iter().any(|(n, _): &(String, Ty)| n == fname) {
                return Err(Diagnostic::error(
                    format!("duplicate field `{fname}` in struct `{}`", s.name),
                    s.span,
                ));
            }
            fields.push((fname.clone(), ty));
        }
        resolved.push(fields);
    }
    let mut out = StructTable::new();
    for (s, fields) in program.structs.iter().zip(resolved) {
        out.push(StructData {
            name: s.name.clone(),
            fields,
        });
    }
    Ok(out)
}

/// Converts a surface type to a semantic type. `region_of` maps a lifetime
/// name (`None` for elided) to a region.
fn ast_ty_to_ty(
    ty: &AstTy,
    structs: &StructTable,
    region_of: &mut impl FnMut(Option<&str>) -> Result<RegionVid, Diagnostic>,
) -> Result<Ty, Diagnostic> {
    Ok(match ty {
        AstTy::Unit => Ty::Unit,
        AstTy::Int => Ty::Int,
        AstTy::Bool => Ty::Bool,
        AstTy::Tuple(tys) => Ty::Tuple(
            tys.iter()
                .map(|t| ast_ty_to_ty(t, structs, region_of))
                .collect::<Result<_, _>>()?,
        ),
        AstTy::Named(name) => {
            let id = structs
                .lookup(name)
                .ok_or_else(|| Diagnostic::error(format!("unknown type `{name}`"), Span::DUMMY))?;
            Ty::Struct(id)
        }
        AstTy::Ref {
            lifetime,
            mutbl,
            inner,
        } => {
            let r = region_of(lifetime.as_deref())?;
            Ty::make_ref(r, *mutbl, ast_ty_to_ty(inner, structs, region_of)?)
        }
    })
}

fn build_signatures(program: &Program, structs: &StructTable) -> Result<Vec<FnSig>, Diagnostic> {
    let mut sigs = Vec::new();
    let mut seen = HashMap::new();
    for f in &program.funcs {
        if seen.insert(f.name.clone(), ()).is_some() {
            return Err(Diagnostic::error(
                format!("duplicate function definition `{}`", f.name),
                f.span,
            ));
        }
        // Region 0..n for declared lifetime params, then fresh regions for
        // elided lifetimes in parameter types.
        let mut region_names: Vec<Option<String>> =
            f.lifetime_params.iter().map(|n| Some(n.clone())).collect();
        let mut named: HashMap<String, RegionVid> = f
            .lifetime_params
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), RegionVid(i as u32)))
            .collect();

        let mut inputs = Vec::new();
        for p in &f.params {
            let ty = ast_ty_to_ty(&p.ty, structs, &mut |lt| match lt {
                Some(name) => named.get(name).copied().ok_or_else(|| {
                    Diagnostic::error(
                        format!("undeclared lifetime `'{name}` in function `{}`", f.name),
                        p.span,
                    )
                }),
                None => {
                    let r = RegionVid(region_names.len() as u32);
                    region_names.push(None);
                    Ok(r)
                }
            })?;
            inputs.push(ty);
        }

        // Return-type elision: allowed only when the parameters mention
        // exactly one region overall (the Rust elision rule restricted to
        // our setting).
        let param_regions: Vec<RegionVid> = {
            let mut rs: Vec<RegionVid> = inputs.iter().flat_map(|t| t.regions()).collect();
            rs.sort_unstable();
            rs.dedup();
            rs
        };
        let output = ast_ty_to_ty(&f.ret_ty, structs, &mut |lt| match lt {
            Some(name) => named.get(name).copied().ok_or_else(|| {
                Diagnostic::error(
                    format!(
                        "undeclared lifetime `'{name}` in return type of `{}`",
                        f.name
                    ),
                    f.span,
                )
            }),
            None => {
                if param_regions.len() == 1 {
                    Ok(param_regions[0])
                } else {
                    Err(Diagnostic::error(
                        format!(
                            "cannot elide the return lifetime of `{}`: expected exactly one parameter lifetime, found {}",
                            f.name,
                            param_regions.len()
                        ),
                        f.span,
                    ))
                }
            }
        })?;

        let mut outlives = Vec::new();
        for (long, short) in &f.outlives_bounds {
            let l = *named.get(long).ok_or_else(|| {
                Diagnostic::error(
                    format!("undeclared lifetime `'{long}` in where clause"),
                    f.span,
                )
            })?;
            let s = *named.get(short).ok_or_else(|| {
                Diagnostic::error(
                    format!("undeclared lifetime `'{short}` in where clause"),
                    f.span,
                )
            })?;
            outlives.push((l, s));
        }
        // `named` is only needed during construction of this signature.
        named.clear();

        // `#[effect(reads(..))]` / `#[effect(writes(..))]` may only name the
        // function's own parameters.
        if let Some(effect) = &f.effect {
            for pname in effect.reads.iter().chain(effect.writes.iter()) {
                if !f.params.iter().any(|p| &p.name == pname) {
                    return Err(Diagnostic::error(
                        format!(
                            "`#[effect]` on `{}` names unknown parameter `{pname}`",
                            f.name
                        ),
                        f.span,
                    ));
                }
            }
        }

        sigs.push(FnSig {
            name: f.name.clone(),
            inputs,
            output,
            region_count: region_names.len() as u32,
            region_names,
            outlives,
            label: f.label.clone(),
            clearance: f.clearance.clone(),
            param_labels: f.params.iter().map(|p| p.label.clone()).collect(),
            effect: f.effect.clone(),
            module: f.module.clone(),
        });
    }
    Ok(sigs)
}

struct FnChecker<'a> {
    structs: &'a StructTable,
    signatures: &'a [FnSig],
    program: &'a Program,
    sig: &'a FnSig,
    func: &'a FnDef,
    table: FnTypeck,
    /// Stack of lexical scopes mapping names to bindings.
    scopes: Vec<HashMap<String, VarId>>,
    loop_depth: usize,
}

impl<'a> FnChecker<'a> {
    fn fresh_var(&mut self, name: &str, ty: Ty, mutable: bool) -> VarId {
        let id = VarId(self.table.var_tys.len() as u32);
        self.table.var_tys.push(ty);
        self.table.var_names.push(name.to_string());
        self.table.var_mut.push(mutable);
        id
    }

    fn declare(&mut self, name: &str, ty: Ty, mutable: bool) -> VarId {
        let id = self.fresh_var(name, ty, mutable);
        self.scopes
            .last_mut()
            .expect("scope stack is never empty")
            .insert(name.to_string(), id);
        id
    }

    fn lookup(&self, name: &str) -> Option<VarId> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }

    fn erase_regions(ty: &Ty) -> Ty {
        ty.map_regions(&mut |_| RegionVid::ERASED)
    }

    fn check_fn(&mut self) -> Result<(), Diagnostic> {
        // Parameters are bindings; their types are the signature types with
        // regions erased (lowering re-instantiates the signature regions).
        for (param, sig_ty) in self.func.params.iter().zip(self.sig.inputs.clone()) {
            let ty = Self::erase_regions(&sig_ty);
            // Parameters are mutable when they are unique references or when
            // reassignment is never checked; Rox treats parameters as
            // immutable bindings (matching Rust without `mut` patterns).
            let var = self.declare(&param.name, ty, false);
            self.table.param_vars.push(var);
        }

        let ret_ty = Self::erase_regions(&self.sig.output);
        self.check_block(&self.func.body.clone())?;

        if ret_ty != Ty::Unit && !Self::block_always_returns(&self.func.body) {
            return Err(Diagnostic::error(
                format!(
                    "function `{}` returns `{}` but not all control-flow paths end in `return`",
                    self.func.name, self.func.ret_ty
                ),
                self.func.span,
            ));
        }
        Ok(())
    }

    fn block_always_returns(block: &Block) -> bool {
        block.stmts.iter().any(Self::stmt_always_returns)
    }

    fn stmt_always_returns(stmt: &Stmt) -> bool {
        match &stmt.kind {
            StmtKind::Return(_) => true,
            StmtKind::If {
                then_block,
                else_block: Some(else_block),
                ..
            } => Self::block_always_returns(then_block) && Self::block_always_returns(else_block),
            StmtKind::Loop { body } => {
                // A loop with no break never falls through.
                !Self::block_contains_break(body)
            }
            _ => false,
        }
    }

    fn block_contains_break(block: &Block) -> bool {
        block.stmts.iter().any(|s| match &s.kind {
            StmtKind::Break => true,
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => {
                Self::block_contains_break(then_block)
                    || else_block.as_ref().is_some_and(Self::block_contains_break)
            }
            // Breaks inside nested loops belong to those loops.
            StmtKind::While { .. } | StmtKind::Loop { .. } => false,
            _ => false,
        })
    }

    fn check_block(&mut self, block: &Block) -> Result<(), Diagnostic> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.check_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), Diagnostic> {
        match &stmt.kind {
            StmtKind::Let {
                name,
                mutable,
                ty,
                init,
                declassify: _,
            } => {
                let init_ty = self.check_expr(init)?;
                let binding_ty = if let Some(ann) = ty {
                    let ann_ty = ast_ty_to_ty(ann, self.structs, &mut |lt| {
                        if lt.is_some() {
                            Err(Diagnostic::error(
                                "named lifetimes are not allowed in let annotations",
                                stmt.span,
                            ))
                        } else {
                            Ok(RegionVid::ERASED)
                        }
                    })?;
                    if !ann_ty.compatible(&init_ty) {
                        return Err(Diagnostic::error(
                            format!(
                                "mismatched types in let binding of `{name}`: annotation is `{}` but initializer has type `{}`",
                                ann_ty.display(self.structs),
                                init_ty.display(self.structs)
                            ),
                            stmt.span,
                        ));
                    }
                    ann_ty
                } else {
                    init_ty
                };
                let var = self.declare(name, binding_ty, *mutable);
                self.table.let_vars.insert(init.id, var);
                Ok(())
            }
            StmtKind::Assign { place, value } => {
                let place_ty = self.check_expr(place)?;
                let value_ty = self.check_expr(value)?;
                if !coerces_to(&value_ty, &place_ty) {
                    return Err(Diagnostic::error(
                        format!(
                            "mismatched types in assignment: place has type `{}` but value has type `{}`",
                            place_ty.display(self.structs),
                            value_ty.display(self.structs)
                        ),
                        stmt.span,
                    ));
                }
                let mutbl = self.place_mutability(place)?;
                if !mutbl {
                    return Err(Diagnostic::error(
                        "cannot assign to immutable place",
                        place.span,
                    ));
                }
                Ok(())
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                let cond_ty = self.check_expr(cond)?;
                if !cond_ty.compatible(&Ty::Bool) {
                    return Err(Diagnostic::error(
                        format!(
                            "if condition must be `bool`, found `{}`",
                            cond_ty.display(self.structs)
                        ),
                        cond.span,
                    ));
                }
                self.check_block(then_block)?;
                if let Some(eb) = else_block {
                    self.check_block(eb)?;
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let cond_ty = self.check_expr(cond)?;
                if !cond_ty.compatible(&Ty::Bool) {
                    return Err(Diagnostic::error(
                        format!(
                            "while condition must be `bool`, found `{}`",
                            cond_ty.display(self.structs)
                        ),
                        cond.span,
                    ));
                }
                self.loop_depth += 1;
                self.check_block(body)?;
                self.loop_depth -= 1;
                Ok(())
            }
            StmtKind::Loop { body } => {
                self.loop_depth += 1;
                self.check_block(body)?;
                self.loop_depth -= 1;
                Ok(())
            }
            StmtKind::Return(value) => {
                let ret_ty = Self::erase_regions(&self.sig.output);
                match value {
                    Some(e) => {
                        let t = self.check_expr(e)?;
                        if !coerces_to(&t, &ret_ty) {
                            return Err(Diagnostic::error(
                                format!(
                                    "return type mismatch: function returns `{}` but value has type `{}`",
                                    ret_ty.display(self.structs),
                                    t.display(self.structs)
                                ),
                                e.span,
                            ));
                        }
                    }
                    None => {
                        if ret_ty != Ty::Unit {
                            return Err(Diagnostic::error(
                                "empty return in a function with a non-unit return type",
                                stmt.span,
                            ));
                        }
                    }
                }
                Ok(())
            }
            StmtKind::Break | StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return Err(Diagnostic::error(
                        "`break`/`continue` outside of a loop",
                        stmt.span,
                    ));
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.check_expr(e)?;
                Ok(())
            }
        }
    }

    /// Whether the given place expression may be assigned or mutably
    /// borrowed: its root binding is `mut`, or the path passes through a
    /// dereference of a unique reference.
    fn place_mutability(&mut self, expr: &Expr) -> Result<bool, Diagnostic> {
        match &expr.kind {
            ExprKind::Var(name) => {
                let var = self.lookup(name).ok_or_else(|| {
                    Diagnostic::error(format!("unknown variable `{name}`"), expr.span)
                })?;
                Ok(self.table.var_mut[var.0 as usize])
            }
            ExprKind::Field(base, _) => self.place_mutability(base),
            ExprKind::Deref(base) => {
                let base_ty = self
                    .table
                    .expr_tys
                    .get(&base.id)
                    .cloned()
                    .unwrap_or(Ty::Unit);
                match base_ty {
                    Ty::Ref(_, m, _) => Ok(m.is_mut()),
                    _ => Ok(false),
                }
            }
            _ => Ok(false),
        }
    }

    fn check_expr(&mut self, expr: &Expr) -> Result<Ty, Diagnostic> {
        let ty = self.check_expr_inner(expr)?;
        self.table.expr_tys.insert(expr.id, ty.clone());
        Ok(ty)
    }

    fn check_expr_inner(&mut self, expr: &Expr) -> Result<Ty, Diagnostic> {
        match &expr.kind {
            ExprKind::Unit => Ok(Ty::Unit),
            ExprKind::Int(_) => Ok(Ty::Int),
            ExprKind::Bool(_) => Ok(Ty::Bool),
            ExprKind::Var(name) => {
                let var = self.lookup(name).ok_or_else(|| {
                    Diagnostic::error(format!("unknown variable `{name}`"), expr.span)
                })?;
                self.table.expr_vars.insert(expr.id, var);
                Ok(self.table.var_tys[var.0 as usize].clone())
            }
            ExprKind::Field(base, field) => {
                let base_ty = self.check_expr(base)?;
                // Auto-deref one level, as Rust does for field access.
                let (container, _derefed) = match base_ty {
                    Ty::Ref(_, _, inner) => ((*inner).clone(), true),
                    other => (other, false),
                };
                let idx = self.resolve_field(&container, field, expr.span)?;
                container.field_ty(idx, self.structs).ok_or_else(|| {
                    Diagnostic::error(format!("invalid field access `.{field}`"), expr.span)
                })
            }
            ExprKind::Deref(base) => {
                let base_ty = self.check_expr(base)?;
                match base_ty {
                    Ty::Ref(_, _, inner) => Ok((*inner).clone()),
                    other => Err(Diagnostic::error(
                        format!(
                            "cannot dereference a value of type `{}`",
                            other.display(self.structs)
                        ),
                        expr.span,
                    )),
                }
            }
            ExprKind::Borrow { mutbl, expr: inner } => {
                if !inner.is_place() {
                    return Err(Diagnostic::error(
                        "can only borrow place expressions",
                        inner.span,
                    ));
                }
                let inner_ty = self.check_expr(inner)?;
                if mutbl.is_mut() {
                    let ok = self.place_mutability(inner)?;
                    if !ok {
                        return Err(Diagnostic::error(
                            "cannot mutably borrow an immutable place",
                            inner.span,
                        ));
                    }
                }
                Ok(Ty::make_ref(RegionVid::ERASED, *mutbl, inner_ty))
            }
            ExprKind::Call { callee, args } => {
                let func_idx = self
                    .program
                    .funcs
                    .iter()
                    .position(|f| &f.name == callee)
                    .ok_or_else(|| {
                        Diagnostic::error(format!("unknown function `{callee}`"), expr.span)
                    })?;
                let sig = &self.signatures[func_idx];
                if sig.inputs.len() != args.len() {
                    return Err(Diagnostic::error(
                        format!(
                            "function `{callee}` expects {} arguments but {} were supplied",
                            sig.inputs.len(),
                            args.len()
                        ),
                        expr.span,
                    ));
                }
                let expected: Vec<Ty> = sig.inputs.iter().map(Self::erase_regions).collect();
                let output = Self::erase_regions(&sig.output);
                for (arg, expect) in args.iter().zip(expected) {
                    let got = self.check_expr(arg)?;
                    if !coerces_to(&got, &expect) {
                        return Err(Diagnostic::error(
                            format!(
                                "argument type mismatch in call to `{callee}`: expected `{}`, found `{}`",
                                expect.display(self.structs),
                                got.display(self.structs)
                            ),
                            arg.span,
                        ));
                    }
                }
                self.table
                    .call_resolutions
                    .insert(expr.id, FuncId(func_idx as u32));
                Ok(output)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs)?;
                let rt = self.check_expr(rhs)?;
                if op.is_logical() {
                    if !lt.compatible(&Ty::Bool) || !rt.compatible(&Ty::Bool) {
                        return Err(Diagnostic::error(
                            format!("operator `{op}` requires boolean operands"),
                            expr.span,
                        ));
                    }
                    Ok(Ty::Bool)
                } else if op.is_comparison() {
                    if !lt.compatible(&rt) {
                        return Err(Diagnostic::error(
                            format!(
                                "cannot compare `{}` with `{}`",
                                lt.display(self.structs),
                                rt.display(self.structs)
                            ),
                            expr.span,
                        ));
                    }
                    Ok(Ty::Bool)
                } else {
                    if !lt.compatible(&Ty::Int) || !rt.compatible(&Ty::Int) {
                        return Err(Diagnostic::error(
                            format!("operator `{op}` requires integer operands"),
                            expr.span,
                        ));
                    }
                    Ok(Ty::Int)
                }
            }
            ExprKind::Unary { op, operand } => {
                let t = self.check_expr(operand)?;
                match op {
                    UnOp::Neg => {
                        if !t.compatible(&Ty::Int) {
                            return Err(Diagnostic::error(
                                "unary `-` requires an integer operand",
                                expr.span,
                            ));
                        }
                        Ok(Ty::Int)
                    }
                    UnOp::Not => {
                        if !t.compatible(&Ty::Bool) {
                            return Err(Diagnostic::error(
                                "unary `!` requires a boolean operand",
                                expr.span,
                            ));
                        }
                        Ok(Ty::Bool)
                    }
                }
            }
            ExprKind::Tuple(elems) => {
                let tys = elems
                    .iter()
                    .map(|e| self.check_expr(e))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Ty::Tuple(tys))
            }
            ExprKind::StructLit { name, fields } => {
                let sid = self.structs.lookup(name).ok_or_else(|| {
                    Diagnostic::error(format!("unknown struct `{name}`"), expr.span)
                })?;
                let def = self.structs.get(sid).clone();
                if fields.len() != def.fields.len() {
                    return Err(Diagnostic::error(
                        format!(
                            "struct `{name}` has {} fields but {} were provided",
                            def.fields.len(),
                            fields.len()
                        ),
                        expr.span,
                    ));
                }
                for (fname, fexpr) in fields {
                    let idx = def.field_index(fname).ok_or_else(|| {
                        Diagnostic::error(
                            format!("struct `{name}` has no field `{fname}`"),
                            fexpr.span,
                        )
                    })?;
                    let expected = def.fields[idx as usize].1.clone();
                    let got = self.check_expr(fexpr)?;
                    if !got.compatible(&expected) {
                        return Err(Diagnostic::error(
                            format!(
                                "field `{fname}` of `{name}` has type `{}` but the initializer has type `{}`",
                                expected.display(self.structs),
                                got.display(self.structs)
                            ),
                            fexpr.span,
                        ));
                    }
                }
                Ok(Ty::Struct(sid))
            }
        }
    }

    fn resolve_field(
        &self,
        container: &Ty,
        field: &FieldName,
        span: Span,
    ) -> Result<u32, Diagnostic> {
        match (container, field) {
            (Ty::Tuple(tys), FieldName::Index(i)) => {
                if (*i as usize) < tys.len() {
                    Ok(*i)
                } else {
                    Err(Diagnostic::error(
                        format!("tuple index `{i}` out of bounds for a {}-tuple", tys.len()),
                        span,
                    ))
                }
            }
            (Ty::Struct(sid), FieldName::Named(name)) => {
                self.structs.get(*sid).field_index(name).ok_or_else(|| {
                    Diagnostic::error(
                        format!(
                            "struct `{}` has no field `{name}`",
                            self.structs.get(*sid).name
                        ),
                        span,
                    )
                })
            }
            (t, f) => Err(Diagnostic::error(
                format!(
                    "invalid field access `.{f}` on a value of type `{}`",
                    t.display(self.structs)
                ),
                span,
            )),
        }
    }
}

/// Whether a value of type `got` may be passed where `expected` is required:
/// either the types are compatible, or `got` is a unique reference being
/// coerced to a shared reference (Rust's `&mut T -> &T` coercion).
pub fn coerces_to(got: &Ty, expected: &Ty) -> bool {
    if got.compatible(expected) {
        return true;
    }
    match (got, expected) {
        (Ty::Ref(_, got_m, a), Ty::Ref(_, exp_m, b)) => {
            got_m.is_mut() && !exp_m.is_mut() && a.compatible(b)
        }
        _ => false,
    }
}

/// Resolves a field name against a type, returning its index.
///
/// Used by MIR lowering, which needs the same resolution the checker did.
pub fn field_index(container: &Ty, field: &FieldName, structs: &StructTable) -> Option<u32> {
    match (container, field) {
        (Ty::Tuple(tys), FieldName::Index(i)) => ((*i as usize) < tys.len()).then_some(*i),
        (Ty::Struct(sid), FieldName::Named(name)) => structs.get(*sid).field_index(name),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<TypeckResults, Diagnostic> {
        check_program(&parse_program(src).expect("parse failure"))
    }

    #[test]
    fn accepts_simple_arithmetic_function() {
        let r = check("fn add(x: i32, y: i32) -> i32 { return x + y; }").unwrap();
        assert_eq!(r.signatures.len(), 1);
        assert_eq!(r.signatures[0].inputs, vec![Ty::Int, Ty::Int]);
        assert_eq!(r.signatures[0].output, Ty::Int);
    }

    #[test]
    fn rejects_unknown_variable() {
        let err = check("fn f() -> i32 { return zzz; }").unwrap_err();
        assert!(err.message.contains("unknown variable"));
    }

    #[test]
    fn rejects_type_mismatch_in_let() {
        let err = check("fn f() { let x: bool = 3; }").unwrap_err();
        assert!(err.message.contains("mismatched types"));
    }

    #[test]
    fn rejects_assignment_to_immutable_binding() {
        let err = check("fn f() { let x = 1; x = 2; }").unwrap_err();
        assert!(err.message.contains("immutable"));
    }

    #[test]
    fn accepts_assignment_to_mutable_binding() {
        assert!(check("fn f() { let mut x = 1; x = 2; }").is_ok());
    }

    #[test]
    fn rejects_mut_borrow_of_immutable_place() {
        let err = check("fn f() { let x = 1; let r = &mut x; }").unwrap_err();
        assert!(err.message.contains("cannot mutably borrow"));
    }

    #[test]
    fn accepts_assignment_through_unique_reference() {
        assert!(check("fn f(p: &mut i32) { *p = 3; }").is_ok());
    }

    #[test]
    fn rejects_assignment_through_shared_reference() {
        let err = check("fn f(p: &i32) { *p = 3; }").unwrap_err();
        assert!(err.message.contains("immutable"));
    }

    #[test]
    fn checks_call_arity_and_types() {
        let ok = check("fn g(x: i32) -> i32 { return x; } fn f() { let a = g(1); }");
        assert!(ok.is_ok());
        let arity = check("fn g(x: i32) -> i32 { return x; } fn f() { let a = g(); }").unwrap_err();
        assert!(arity.message.contains("expects 1 arguments"));
        let ty =
            check("fn g(x: i32) -> i32 { return x; } fn f() { let a = g(true); }").unwrap_err();
        assert!(ty.message.contains("argument type mismatch"));
    }

    #[test]
    fn resolves_struct_fields() {
        let src = "struct P { a: i32, b: bool }
                   fn f(p: P) -> bool { return p.b; }";
        assert!(check(src).is_ok());
        let bad = "struct P { a: i32 } fn f(p: P) -> i32 { return p.z; }";
        assert!(check(bad).is_err());
    }

    #[test]
    fn rejects_references_in_struct_fields() {
        let err = check("struct Bad { r: &i32 }").unwrap_err();
        assert!(err.message.contains("reference"));
    }

    #[test]
    fn rejects_duplicate_struct_and_fn() {
        assert!(check("struct A { x: i32 } struct A { y: i32 }").is_err());
        assert!(check("fn f() {} fn f() {}").is_err());
    }

    #[test]
    fn lifetime_parameters_resolve_in_signatures() {
        let src = "fn f<'a>(x: &'a mut i32) -> &'a i32 { return x; }";
        let r = check(src).unwrap();
        let sig = &r.signatures[0];
        assert_eq!(sig.region_count, 1);
        assert_eq!(sig.inputs[0].regions(), vec![RegionVid(0)]);
        assert_eq!(sig.output.regions(), vec![RegionVid(0)]);
    }

    #[test]
    fn undeclared_lifetime_is_error() {
        assert!(check("fn f(x: &'a i32) {}").is_err());
    }

    #[test]
    fn elided_lifetimes_get_fresh_regions() {
        let r = check("fn f(x: &i32, y: &mut i32) { }").unwrap();
        let sig = &r.signatures[0];
        assert_eq!(sig.region_count, 2);
        assert_ne!(sig.inputs[0].regions(), sig.inputs[1].regions());
    }

    #[test]
    fn return_elision_requires_single_param_region() {
        assert!(check("fn f(x: &i32) -> &i32 { return x; }").is_ok());
        assert!(check("fn f(x: &i32, y: &i32) -> &i32 { return x; }").is_err());
    }

    #[test]
    fn where_clause_lifetimes_must_be_declared() {
        assert!(check("fn f<'a, 'b>(x: &'a i32, y: &'b i32) where 'a: 'b {}").is_ok());
        assert!(check("fn f<'a>(x: &'a i32) where 'a: 'q {}").is_err());
    }

    #[test]
    fn missing_return_on_some_path_is_error() {
        let err = check("fn f(c: bool) -> i32 { if c { return 1; } }").unwrap_err();
        assert!(err.message.contains("not all control-flow paths"));
        assert!(check("fn f(c: bool) -> i32 { if c { return 1; } else { return 2; } }").is_ok());
    }

    #[test]
    fn loop_without_break_counts_as_diverging() {
        assert!(check("fn f() -> i32 { loop { } }").is_ok());
        assert!(check("fn f() -> i32 { loop { break; } }").is_err());
    }

    #[test]
    fn break_outside_loop_is_error() {
        assert!(check("fn f() { break; }").is_err());
    }

    #[test]
    fn condition_must_be_bool() {
        assert!(check("fn f() { if 1 { } }").is_err());
        assert!(check("fn f() { while 1 { } }").is_err());
    }

    #[test]
    fn tuple_indexing_bounds_checked() {
        assert!(check("fn f() -> i32 { let t = (1, 2); return t.1; }").is_ok());
        assert!(check("fn f() -> i32 { let t = (1, 2); return t.5; }").is_err());
    }

    #[test]
    fn struct_literal_checks_fields() {
        let src = "struct P { a: i32, b: i32 } fn f() -> P { return P { a: 1, b: 2 }; }";
        assert!(check(src).is_ok());
        let missing = "struct P { a: i32, b: i32 } fn f() -> P { return P { a: 1 }; }";
        assert!(check(missing).is_err());
        let wrong = "struct P { a: i32 } fn f() -> P { return P { a: true }; }";
        assert!(check(wrong).is_err());
    }

    #[test]
    fn field_access_autoderefs_references() {
        let src = "fn f(p: &(i32, bool)) -> bool { return p.1; }";
        assert!(check(src).is_ok());
    }

    #[test]
    fn logical_operators_require_bools() {
        assert!(check("fn f(a: bool, b: bool) -> bool { return a && b; }").is_ok());
        assert!(check("fn f(a: i32, b: bool) -> bool { return a && b; }").is_err());
    }

    #[test]
    fn comparison_requires_same_types() {
        assert!(check("fn f(a: i32, b: i32) -> bool { return a < b; }").is_ok());
        assert!(check("fn f(a: i32, b: bool) -> bool { return a == b; }").is_err());
    }

    #[test]
    fn borrow_of_non_place_is_error() {
        assert!(check("fn f() { let r = &(1 + 2); }").is_err());
    }

    #[test]
    fn var_resolution_handles_shadowing_across_scopes() {
        let src = "fn f() -> i32 { let x = 1; if true { let x = 2; } return x; }";
        let r = check(src).unwrap();
        // Two bindings named `x` exist.
        let count = r.fn_tables[0]
            .var_names
            .iter()
            .filter(|n| n.as_str() == "x")
            .count();
        assert_eq!(count, 2);
    }

    #[test]
    fn unknown_function_is_error() {
        assert!(check("fn f() { g(); }").is_err());
    }

    #[test]
    fn unknown_struct_type_is_error() {
        assert!(check("fn f(p: Mystery) { }").is_err());
    }
}
