//! Semantic types for Rox.
//!
//! [`Ty`] is the type representation used by the type checker and MIR. Unlike
//! surface [`crate::ast::AstTy`], reference types carry a [`RegionVid`]: an
//! index into a body's region (provenance) table. The type checker produces
//! types with [`RegionVid::ERASED`] regions; MIR lowering re-instantiates each
//! reference position with a fresh region variable, mirroring how rustc's NLL
//! treats the regions in local types.

use crate::ast::Mutability;
use std::fmt;

/// Index of a struct definition in a [`StructTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub u32);

/// A region (provenance / lifetime) variable, scoped to one function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionVid(pub u32);

impl RegionVid {
    /// Placeholder region used by the type checker before MIR lowering
    /// assigns real region variables.
    pub const ERASED: RegionVid = RegionVid(u32::MAX);

    /// Whether this is the erased placeholder region.
    pub fn is_erased(self) -> bool {
        self == RegionVid::ERASED
    }
}

impl fmt::Display for RegionVid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_erased() {
            write!(f, "'_")
        } else {
            write!(f, "'{}", self.0)
        }
    }
}

/// A semantic type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// The unit type `()`.
    Unit,
    /// Machine integers (`i32`).
    Int,
    /// Booleans.
    Bool,
    /// Tuples.
    Tuple(Vec<Ty>),
    /// A named struct. Struct fields are reference-free by construction.
    Struct(StructId),
    /// A reference `&'r T` / `&'r mut T`.
    Ref(RegionVid, Mutability, Box<Ty>),
}

impl Ty {
    /// Builds a reference type.
    pub fn make_ref(region: RegionVid, mutbl: Mutability, inner: Ty) -> Ty {
        Ty::Ref(region, mutbl, Box::new(inner))
    }

    /// Whether two types have the same shape, ignoring region variables.
    ///
    /// This is the notion of type equality used by the type checker: regions
    /// are inferred separately by the MIR region analysis.
    pub fn compatible(&self, other: &Ty) -> bool {
        match (self, other) {
            (Ty::Unit, Ty::Unit) | (Ty::Int, Ty::Int) | (Ty::Bool, Ty::Bool) => true,
            (Ty::Tuple(a), Ty::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.compatible(y))
            }
            (Ty::Struct(a), Ty::Struct(b)) => a == b,
            (Ty::Ref(_, m1, a), Ty::Ref(_, m2, b)) => m1 == m2 && a.compatible(b),
            _ => false,
        }
    }

    /// Whether the type contains any reference anywhere.
    pub fn contains_ref(&self) -> bool {
        match self {
            Ty::Unit | Ty::Int | Ty::Bool => false,
            Ty::Tuple(tys) => tys.iter().any(Ty::contains_ref),
            Ty::Struct(_) => false, // struct fields are reference-free
            Ty::Ref(..) => true,
        }
    }

    /// All region variables appearing in the type, in a deterministic
    /// (pre-order) order.
    pub fn regions(&self) -> Vec<RegionVid> {
        let mut out = Vec::new();
        self.collect_regions(&mut out);
        out
    }

    fn collect_regions(&self, out: &mut Vec<RegionVid>) {
        match self {
            Ty::Unit | Ty::Int | Ty::Bool | Ty::Struct(_) => {}
            Ty::Tuple(tys) => tys.iter().for_each(|t| t.collect_regions(out)),
            Ty::Ref(r, _, inner) => {
                out.push(*r);
                inner.collect_regions(out);
            }
        }
    }

    /// Rewrites every region in the type using `f`, returning the new type.
    pub fn map_regions(&self, f: &mut impl FnMut(RegionVid) -> RegionVid) -> Ty {
        match self {
            Ty::Unit => Ty::Unit,
            Ty::Int => Ty::Int,
            Ty::Bool => Ty::Bool,
            Ty::Struct(s) => Ty::Struct(*s),
            Ty::Tuple(tys) => Ty::Tuple(tys.iter().map(|t| t.map_regions(f)).collect()),
            Ty::Ref(r, m, inner) => {
                let new_r = f(*r);
                Ty::Ref(new_r, *m, Box::new(inner.map_regions(f)))
            }
        }
    }

    /// The number of fields if the type is a tuple or struct.
    pub fn field_count(&self, structs: &StructTable) -> usize {
        match self {
            Ty::Tuple(tys) => tys.len(),
            Ty::Struct(sid) => structs.get(*sid).fields.len(),
            _ => 0,
        }
    }

    /// The type of field `idx` of this type, if it is a tuple or struct.
    pub fn field_ty(&self, idx: u32, structs: &StructTable) -> Option<Ty> {
        match self {
            Ty::Tuple(tys) => tys.get(idx as usize).cloned(),
            Ty::Struct(sid) => structs
                .get(*sid)
                .fields
                .get(idx as usize)
                .map(|(_, t)| t.clone()),
            _ => None,
        }
    }

    /// Renders the type, resolving struct names through `structs`.
    pub fn display<'a>(&'a self, structs: &'a StructTable) -> TyDisplay<'a> {
        TyDisplay { ty: self, structs }
    }
}

/// Helper for rendering a [`Ty`] with struct names resolved.
pub struct TyDisplay<'a> {
    ty: &'a Ty,
    structs: &'a StructTable,
}

impl fmt::Display for TyDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ty {
            Ty::Unit => write!(f, "()"),
            Ty::Int => write!(f, "i32"),
            Ty::Bool => write!(f, "bool"),
            Ty::Struct(sid) => write!(f, "{}", self.structs.get(*sid).name),
            Ty::Tuple(tys) => {
                write!(f, "(")?;
                for (i, t) in tys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", t.display(self.structs))?;
                }
                write!(f, ")")
            }
            Ty::Ref(r, m, inner) => {
                write!(f, "&{r} ")?;
                if m.is_mut() {
                    write!(f, "mut ")?;
                }
                write!(f, "{}", inner.display(self.structs))
            }
        }
    }
}

/// A struct definition resolved to semantic types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructData {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order: name and type.
    pub fields: Vec<(String, Ty)>,
}

impl StructData {
    /// Index of the field named `name`, if present.
    pub fn field_index(&self, name: &str) -> Option<u32> {
        self.fields
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| i as u32)
    }
}

/// Table of all struct definitions in a program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StructTable {
    structs: Vec<StructData>,
}

impl StructTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StructTable::default()
    }

    /// Adds a struct and returns its id.
    pub fn push(&mut self, data: StructData) -> StructId {
        let id = StructId(self.structs.len() as u32);
        self.structs.push(data);
        id
    }

    /// Looks up a struct by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is not in the table.
    pub fn get(&self, id: StructId) -> &StructData {
        &self.structs[id.0 as usize]
    }

    /// Finds a struct id by name.
    pub fn lookup(&self, name: &str) -> Option<StructId> {
        self.structs
            .iter()
            .position(|s| s.name == name)
            .map(|i| StructId(i as u32))
    }

    /// Number of structs in the table.
    pub fn len(&self) -> usize {
        self.structs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.structs.is_empty()
    }

    /// Iterates over `(id, data)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StructId, &StructData)> {
        self.structs
            .iter()
            .enumerate()
            .map(|(i, s)| (StructId(i as u32), s))
    }
}

/// Index of a function in a compiled [`crate::CompiledProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// A function signature as seen by callers: the only information the modular
/// analysis is allowed to use about a callee (paper §2.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSig {
    /// Function name.
    pub name: String,
    /// Parameter types. Region variables index into [`FnSig::regions`].
    pub inputs: Vec<Ty>,
    /// Return type. Region variables index into [`FnSig::regions`].
    pub output: Ty,
    /// Number of abstract (universal) regions in the signature; region `i`
    /// of the signature is `RegionVid(i)` for `i < region_count`.
    pub region_count: u32,
    /// Names of declared lifetime parameters (elided regions are unnamed).
    pub region_names: Vec<Option<String>>,
    /// Declared outlives bounds `(longer, shorter)` between signature regions.
    pub outlives: Vec<(RegionVid, RegionVid)>,
    /// Security label of the data this function produces (`#[label(L)]`).
    pub label: Option<String>,
    /// Clearance of this function as a sink (`#[sink(L)]`): the highest label
    /// it may observe.
    pub clearance: Option<String>,
    /// Per-parameter security labels (`#[label(L)]` on a parameter), indexed
    /// parallel to [`FnSig::inputs`].
    pub param_labels: Vec<Option<String>>,
    /// Declared effect contract (`#[effect(..)]`), checked against the
    /// inferred effect signature by `flowistry-lint`.
    pub effect: Option<crate::ast::EffectDecl>,
    /// Module membership (`#[module(M)]`); carries the module's
    /// `#![module_policy(..)]` defaults into the IFC policy.
    pub module: Option<String>,
}

impl FnSig {
    /// Whether any parameter contains a unique (mutable) reference,
    /// transitively. Functions with no unique references cannot mutate their
    /// caller's state under the modular assumption.
    pub fn has_unique_ref_param(&self) -> bool {
        fn check(ty: &Ty) -> bool {
            match ty {
                Ty::Ref(_, m, inner) => m.is_mut() || check(inner),
                Ty::Tuple(tys) => tys.iter().any(check),
                _ => false,
            }
        }
        self.inputs.iter().any(check)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_point() -> (StructTable, StructId) {
        let mut t = StructTable::new();
        let id = t.push(StructData {
            name: "Point".into(),
            fields: vec![("x".into(), Ty::Int), ("y".into(), Ty::Int)],
        });
        (t, id)
    }

    #[test]
    fn compatibility_ignores_regions() {
        let a = Ty::make_ref(RegionVid(1), Mutability::Mut, Ty::Int);
        let b = Ty::make_ref(RegionVid(7), Mutability::Mut, Ty::Int);
        assert!(a.compatible(&b));
        let c = Ty::make_ref(RegionVid(7), Mutability::Shared, Ty::Int);
        assert!(!a.compatible(&c));
    }

    #[test]
    fn compatibility_checks_shape() {
        let a = Ty::Tuple(vec![Ty::Int, Ty::Bool]);
        let b = Ty::Tuple(vec![Ty::Int, Ty::Bool]);
        let c = Ty::Tuple(vec![Ty::Int]);
        assert!(a.compatible(&b));
        assert!(!a.compatible(&c));
        assert!(!a.compatible(&Ty::Int));
    }

    #[test]
    fn contains_ref_walks_tuples() {
        let t = Ty::Tuple(vec![
            Ty::Int,
            Ty::make_ref(RegionVid(0), Mutability::Shared, Ty::Bool),
        ]);
        assert!(t.contains_ref());
        assert!(!Ty::Tuple(vec![Ty::Int, Ty::Bool]).contains_ref());
    }

    #[test]
    fn regions_are_collected_in_preorder() {
        let t = Ty::Tuple(vec![
            Ty::make_ref(RegionVid(3), Mutability::Mut, Ty::Int),
            Ty::make_ref(
                RegionVid(5),
                Mutability::Shared,
                Ty::make_ref(RegionVid(9), Mutability::Shared, Ty::Int),
            ),
        ]);
        assert_eq!(t.regions(), vec![RegionVid(3), RegionVid(5), RegionVid(9)]);
    }

    #[test]
    fn map_regions_rewrites_all_positions() {
        let t = Ty::make_ref(
            RegionVid(1),
            Mutability::Mut,
            Ty::make_ref(RegionVid(2), Mutability::Shared, Ty::Int),
        );
        let mapped = t.map_regions(&mut |r| RegionVid(r.0 + 10));
        assert_eq!(mapped.regions(), vec![RegionVid(11), RegionVid(12)]);
    }

    #[test]
    fn field_access_on_tuple_and_struct() {
        let (table, id) = table_with_point();
        let tup = Ty::Tuple(vec![Ty::Int, Ty::Bool]);
        assert_eq!(tup.field_ty(1, &table), Some(Ty::Bool));
        assert_eq!(tup.field_ty(2, &table), None);
        assert_eq!(tup.field_count(&table), 2);
        let st = Ty::Struct(id);
        assert_eq!(st.field_ty(0, &table), Some(Ty::Int));
        assert_eq!(st.field_count(&table), 2);
        assert_eq!(Ty::Int.field_count(&table), 0);
    }

    #[test]
    fn struct_table_lookup() {
        let (table, id) = table_with_point();
        assert_eq!(table.lookup("Point"), Some(id));
        assert_eq!(table.lookup("Missing"), None);
        assert_eq!(table.get(id).field_index("y"), Some(1));
        assert_eq!(table.get(id).field_index("z"), None);
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }

    #[test]
    fn ty_display_renders_references() {
        let (table, id) = table_with_point();
        let t = Ty::make_ref(RegionVid(2), Mutability::Mut, Ty::Struct(id));
        assert_eq!(t.display(&table).to_string(), "&'2 mut Point");
        let erased = Ty::make_ref(RegionVid::ERASED, Mutability::Shared, Ty::Int);
        assert_eq!(erased.display(&table).to_string(), "&'_ i32");
    }

    #[test]
    fn fn_sig_unique_ref_detection() {
        let sig = FnSig {
            name: "f".into(),
            inputs: vec![Ty::Tuple(vec![Ty::make_ref(
                RegionVid(0),
                Mutability::Mut,
                Ty::Int,
            )])],
            output: Ty::Unit,
            region_count: 1,
            region_names: vec![Some("a".into())],
            outlives: vec![],
            label: None,
            clearance: None,
            param_labels: vec![None],
            effect: None,
            module: None,
        };
        assert!(sig.has_unique_ref_param());
        let sig2 = FnSig {
            name: "g".into(),
            inputs: vec![Ty::make_ref(RegionVid(0), Mutability::Shared, Ty::Int)],
            output: Ty::Int,
            region_count: 1,
            region_names: vec![None],
            outlives: vec![],
            label: None,
            clearance: None,
            param_labels: vec![None],
            effect: None,
            module: None,
        };
        assert!(!sig2.has_unique_ref_param());
    }
}
