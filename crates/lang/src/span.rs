//! Source spans and spanned diagnostics.
//!
//! Every token, AST node and MIR statement carries a [`Span`] pointing back
//! into the original source text. Spans are what the program slicer uses to
//! highlight or fade lines (Figure 5a of the paper), and what diagnostics use
//! to report errors.

use std::fmt;

/// A half-open byte range `[lo, hi)` into a source string.
///
/// # Examples
///
/// ```
/// use flowistry_lang::span::Span;
/// let s = Span::new(2, 5);
/// assert_eq!(s.len(), 3);
/// assert!(s.contains(3));
/// assert!(!s.contains(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// Inclusive start byte offset.
    pub lo: u32,
    /// Exclusive end byte offset.
    pub hi: u32,
}

impl Span {
    /// A span used for synthesized nodes that have no source location.
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// Creates a span covering bytes `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "span lo must not exceed hi");
        Span { lo, hi }
    }

    /// Number of bytes covered by this span.
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether the byte offset `pos` falls inside the span.
    pub fn contains(&self, pos: u32) -> bool {
        self.lo <= pos && pos < self.hi
    }

    /// The smallest span containing both `self` and `other`.
    pub fn to(&self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Extracts the text this span covers from `src`.
    ///
    /// Returns an empty string if the span is out of bounds for `src`.
    pub fn snippet<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.lo as usize..self.hi as usize).unwrap_or("")
    }

    /// The 1-based line number on which this span starts in `src`.
    pub fn line_of(&self, src: &str) -> usize {
        src.bytes()
            .take(self.lo as usize)
            .filter(|&b| b == b'\n')
            .count()
            + 1
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// A value paired with the span it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Spanned<T> {
    /// The wrapped value.
    pub node: T,
    /// Where the value came from in the source.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pairs `node` with `span`.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }
}

/// A diagnostic produced by any compiler stage (lexing, parsing, type
/// checking, borrow checking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Human readable message, lowercase, no trailing punctuation.
    pub message: String,
    /// Primary source location.
    pub span: Span,
    /// Severity of the diagnostic.
    pub level: Level,
}

/// Severity level of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Compilation cannot proceed meaningfully.
    Error,
    /// Something suspicious, compilation continues.
    Warning,
}

impl Diagnostic {
    /// Creates an error-level diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            message: message.into(),
            span,
            level: Level::Error,
        }
    }

    /// Creates a warning-level diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            message: message.into(),
            span,
            level: Level::Warning,
        }
    }

    /// Renders the diagnostic against the source it refers to, including the
    /// 1-based line number.
    pub fn render(&self, src: &str) -> String {
        let line = self.span.line_of(src);
        let kind = match self.level {
            Level::Error => "error",
            Level::Warning => "warning",
        };
        format!("{kind}: {} (line {line})", self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.level {
            Level::Error => "error",
            Level::Warning => "warning",
        };
        write!(f, "{kind}: {} at {}", self.message, self.span)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let s = Span::new(3, 8);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(s.contains(3));
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert!(!s.contains(2));
    }

    #[test]
    fn span_union() {
        let a = Span::new(2, 4);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
    }

    #[test]
    #[should_panic]
    fn span_invalid() {
        let _ = Span::new(5, 3);
    }

    #[test]
    fn snippet_and_line() {
        let src = "let x = 1;\nlet y = 2;";
        let s = Span::new(11, 14);
        assert_eq!(s.snippet(src), "let");
        assert_eq!(s.line_of(src), 2);
        assert_eq!(Span::new(0, 3).line_of(src), 1);
    }

    #[test]
    fn snippet_out_of_bounds_is_empty() {
        let s = Span::new(100, 120);
        assert_eq!(s.snippet("short"), "");
    }

    #[test]
    fn diagnostic_render() {
        let src = "fn f() {\n  oops\n}";
        let d = Diagnostic::error("unknown variable `oops`", Span::new(11, 15));
        assert_eq!(d.render(src), "error: unknown variable `oops` (line 2)");
        let w = Diagnostic::warning("unused", Span::new(0, 2));
        assert!(w.render(src).starts_with("warning:"));
    }

    #[test]
    fn spanned_pairs_value_with_span() {
        let s = Spanned::new(42u32, Span::new(1, 2));
        assert_eq!(s.node, 42);
        assert_eq!(s.span, Span::new(1, 2));
    }
}
