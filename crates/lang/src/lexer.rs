//! Lexer for the Rox surface language.
//!
//! Rox is the ownership-typed Rust subset used throughout this reproduction
//! as the stand-in for Rust itself (see DESIGN.md §1). The lexer turns source
//! text into a vector of [`Token`]s with [`Span`]s; comments (`// ...`) and
//! whitespace are skipped.

use crate::span::{Diagnostic, Span};
use std::fmt;

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers
    /// Integer literal, e.g. `42`.
    Int(i64),
    /// Identifier, e.g. `foo`.
    Ident(String),
    /// Lifetime, e.g. `'a` (stored without the leading quote).
    Lifetime(String),

    // Keywords
    /// `fn`
    Fn,
    /// `struct`
    Struct,
    /// `let`
    Let,
    /// `mut`
    Mut,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `loop`
    Loop,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `true`
    True,
    /// `false`
    False,
    /// `where`
    Where,
    /// `i32`
    I32,
    /// `bool`
    Bool,

    // Punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `.`
    Dot,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!`
    Bang,
    /// `#` (attribute opener)
    Pound,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Int(n) => write!(f, "{n}"),
            Ident(s) => write!(f, "{s}"),
            Lifetime(s) => write!(f, "'{s}"),
            Fn => write!(f, "fn"),
            Struct => write!(f, "struct"),
            Let => write!(f, "let"),
            Mut => write!(f, "mut"),
            If => write!(f, "if"),
            Else => write!(f, "else"),
            While => write!(f, "while"),
            Loop => write!(f, "loop"),
            Return => write!(f, "return"),
            Break => write!(f, "break"),
            Continue => write!(f, "continue"),
            True => write!(f, "true"),
            False => write!(f, "false"),
            Where => write!(f, "where"),
            I32 => write!(f, "i32"),
            Bool => write!(f, "bool"),
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBrace => write!(f, "{{"),
            RBrace => write!(f, "}}"),
            Comma => write!(f, ","),
            Semi => write!(f, ";"),
            Colon => write!(f, ":"),
            Arrow => write!(f, "->"),
            Dot => write!(f, "."),
            Amp => write!(f, "&"),
            AmpAmp => write!(f, "&&"),
            PipePipe => write!(f, "||"),
            Star => write!(f, "*"),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            Slash => write!(f, "/"),
            Percent => write!(f, "%"),
            Eq => write!(f, "="),
            EqEq => write!(f, "=="),
            NotEq => write!(f, "!="),
            Lt => write!(f, "<"),
            Le => write!(f, "<="),
            Gt => write!(f, ">"),
            Ge => write!(f, ">="),
            Bang => write!(f, "!"),
            Pound => write!(f, "#"),
            LBracket => write!(f, "["),
            RBracket => write!(f, "]"),
            Eof => write!(f, "<eof>"),
        }
    }
}

/// A token: a [`TokenKind`] plus the [`Span`] it was lexed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it came from in the source.
    pub span: Span,
}

/// Lexes `src` into tokens, ending with a single [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for unrecognized characters or malformed
/// lifetimes/integers.
///
/// # Examples
///
/// ```
/// use flowistry_lang::lexer::{tokenize, TokenKind};
/// let toks = tokenize("let x = 1;").unwrap();
/// assert_eq!(toks[0].kind, TokenKind::Let);
/// assert!(matches!(toks.last().unwrap().kind, TokenKind::Eof));
/// ```
pub fn tokenize(src: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn push(&mut self, kind: TokenKind, lo: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(lo as u32, self.pos as u32),
        });
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        while let Some(b) = self.peek() {
            let lo = self.pos;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'0'..=b'9' => self.lex_int(lo)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(lo),
                b'\'' => self.lex_lifetime(lo)?,
                _ => self.lex_punct(lo)?,
            }
        }
        let end = self.pos as u32;
        self.tokens.push(Token {
            kind: TokenKind::Eof,
            span: Span::new(end, end),
        });
        Ok(self.tokens)
    }

    fn lex_int(&mut self, lo: usize) -> Result<(), Diagnostic> {
        while let Some(b'0'..=b'9') = self.peek() {
            self.bump();
        }
        let text = &self.src[lo..self.pos];
        let value: i64 = text.parse().map_err(|_| {
            Diagnostic::error(
                format!("integer literal `{text}` is out of range"),
                Span::new(lo as u32, self.pos as u32),
            )
        })?;
        self.push(TokenKind::Int(value), lo);
        Ok(())
    }

    fn lex_ident(&mut self, lo: usize) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[lo..self.pos];
        let kind = match text {
            "fn" => TokenKind::Fn,
            "struct" => TokenKind::Struct,
            "let" => TokenKind::Let,
            "mut" => TokenKind::Mut,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "loop" => TokenKind::Loop,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "where" => TokenKind::Where,
            "i32" | "u32" | "usize" => TokenKind::I32,
            "bool" => TokenKind::Bool,
            _ => TokenKind::Ident(text.to_string()),
        };
        self.push(kind, lo);
    }

    fn lex_lifetime(&mut self, lo: usize) -> Result<(), Diagnostic> {
        self.bump(); // consume the quote
        let name_start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == name_start {
            return Err(Diagnostic::error(
                "expected lifetime name after `'`",
                Span::new(lo as u32, self.pos as u32),
            ));
        }
        let name = self.src[name_start..self.pos].to_string();
        self.push(TokenKind::Lifetime(name), lo);
        Ok(())
    }

    fn lex_punct(&mut self, lo: usize) -> Result<(), Diagnostic> {
        let b = self.bump().expect("caller checked non-empty");
        let kind = match b {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b',' => TokenKind::Comma,
            b'#' => TokenKind::Pound,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b';' => TokenKind::Semi,
            b':' => TokenKind::Colon,
            b'.' => TokenKind::Dot,
            b'*' => TokenKind::Star,
            b'+' => TokenKind::Plus,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AmpAmp
                } else {
                    TokenKind::Amp
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::PipePipe
                } else {
                    return Err(Diagnostic::error(
                        "single `|` is not a valid token",
                        Span::new(lo as u32, self.pos as u32),
                    ));
                }
            }
            b'-' => {
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Arrow
                } else {
                    TokenKind::Minus
                }
            }
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Eq
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    TokenKind::Bang
                }
            }
            b'<' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            other => {
                return Err(Diagnostic::error(
                    format!("unrecognized character `{}`", other as char),
                    Span::new(lo as u32, self.pos as u32),
                ));
            }
        };
        self.push(kind, lo);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        let ks = kinds("fn foo struct Bar let mut");
        assert_eq!(
            ks,
            vec![
                TokenKind::Fn,
                TokenKind::Ident("foo".into()),
                TokenKind::Struct,
                TokenKind::Ident("Bar".into()),
                TokenKind::Let,
                TokenKind::Mut,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_integers() {
        assert_eq!(
            kinds("0 12 345"),
            vec![
                TokenKind::Int(0),
                TokenKind::Int(12),
                TokenKind::Int(345),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn integer_overflow_is_error() {
        assert!(tokenize("99999999999999999999999").is_err());
    }

    #[test]
    fn lexes_lifetimes() {
        assert_eq!(
            kinds("'a 'static"),
            vec![
                TokenKind::Lifetime("a".into()),
                TokenKind::Lifetime("static".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn bare_quote_is_error() {
        assert!(tokenize("' x").is_err());
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("-> == != <= >= && ||"),
            vec![
                TokenKind::Arrow,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AmpAmp,
                TokenKind::PipePipe,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_single_char_operators() {
        assert_eq!(
            kinds("& * + - / % = < > ! . , ; : ( ) { } # [ ]"),
            vec![
                TokenKind::Amp,
                TokenKind::Star,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Bang,
                TokenKind::Dot,
                TokenKind::Comma,
                TokenKind::Semi,
                TokenKind::Colon,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Pound,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let ks = kinds("let x = 1; // trailing comment\n// full line\nlet y = 2;");
        assert_eq!(ks.len(), 11); // 2 * (let ident = int ;) + eof
    }

    #[test]
    fn unknown_character_is_error() {
        let err = tokenize("let x = @;").unwrap_err();
        assert!(err.message.contains("unrecognized"));
    }

    #[test]
    fn spans_point_into_source() {
        let src = "let abc = 42;";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks[1].span.snippet(src), "abc");
        assert_eq!(toks[3].span.snippet(src), "42");
    }

    #[test]
    fn u32_and_usize_alias_to_i32() {
        assert_eq!(
            kinds("u32 usize i32"),
            vec![
                TokenKind::I32,
                TokenKind::I32,
                TokenKind::I32,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn single_pipe_is_error() {
        assert!(tokenize("a | b").is_err());
    }
}
