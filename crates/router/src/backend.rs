//! Backend lifecycle for the router: how replicas are launched (child
//! `flow-server` processes or in-process servers), how the router talks to
//! them (one pipelined data connection plus one control connection each),
//! and how a dead replica is detected and respawned.

use flowistry_fault::{sites as fault_sites, Fault};
use flowistry_obs::{Counter, Gauge, Registry};
use flowistry_server::{ClientConfig, FlowClient};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long connection attempts to a backend may take before the router
/// counts them as failures.
pub(crate) const BACKEND_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// Connect retry budget against a backend that is still binding. Kept
/// small (~15ms of backoff total): launchers return only after the
/// instance is bound, so a refused connect usually means *dead*, and the
/// caller wants that verdict fast enough to fail over.
pub(crate) const BACKEND_CONNECT_ATTEMPTS: u32 = 5;

/// A live backend instance: where it listens and what keeps it alive.
pub struct BackendHandle {
    /// The address the instance serves on.
    pub addr: SocketAddr,
    kind: HandleKind,
}

enum HandleKind {
    /// A supervised child process (killed on respawn and on drop).
    Process(Child),
    /// An in-process [`FlowServer`], for tests and single-binary fleets.
    InProcess(flowistry_server::FlowServer),
    /// An address the router does not supervise (no kill, no respawn).
    External,
}

impl BackendHandle {
    /// Wraps an address the router should route to but never supervise.
    pub fn external(addr: SocketAddr) -> BackendHandle {
        BackendHandle {
            addr,
            kind: HandleKind::External,
        }
    }

    /// The child's OS pid, when the backend is a child process.
    pub fn pid(&self) -> Option<u32> {
        match &self.kind {
            HandleKind::Process(child) => Some(child.id()),
            _ => None,
        }
    }

    /// Whether the router supervises (and may respawn) this instance.
    pub fn supervised(&self) -> bool {
        !matches!(self.kind, HandleKind::External)
    }

    /// Tears the instance down ungracefully — the chaos path and the
    /// respawn path share it.
    pub fn kill(&mut self) {
        match &mut self.kind {
            HandleKind::Process(child) => {
                let _ = child.kill();
                let _ = child.wait();
            }
            HandleKind::InProcess(server) => server.shutdown(),
            HandleKind::External => {}
        }
    }
}

impl Drop for BackendHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Launches backend instances. One launcher per ring slot: respawning slot
/// `i` means calling its launcher again, so a replacement instance comes up
/// with the same configuration (source file, cache dir, auth token) as the
/// one that died.
pub trait BackendLauncher: Send + Sync {
    /// Starts one instance and returns its handle once it is listening.
    fn launch(&self) -> io::Result<BackendHandle>;
}

/// Launches `flow-server` child processes, the production deployment
/// shape. Every instance of a slot shares the `--cache-dir`, so a respawn
/// warm-starts from the summaries its predecessor (and its siblings)
/// already persisted.
pub struct ProcessLauncher {
    /// Path to the `flow-server` binary.
    pub binary: std::path::PathBuf,
    /// Path to the seed source file the server compiles at startup.
    pub source: std::path::PathBuf,
    /// Extra arguments (`--cache-dir`, `--auth-token`, budgets, ...).
    pub args: Vec<String>,
}

impl BackendLauncher for ProcessLauncher {
    fn launch(&self) -> io::Result<BackendHandle> {
        let mut child = Command::new(&self.binary)
            .arg(&self.source)
            .args(["--addr", "127.0.0.1:0"])
            .args(&self.args)
            .stdout(Stdio::piped())
            .stdin(Stdio::null())
            .spawn()?;
        // The server prints `flow-server listening on <addr>` once bound.
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut lines = BufReader::new(stdout);
        let mut line = String::new();
        let addr = loop {
            line.clear();
            if lines.read_line(&mut line)? == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "flow-server exited before announcing its address",
                ));
            }
            if let Some(rest) = line.trim().strip_prefix("flow-server listening on ") {
                match rest.parse::<SocketAddr>() {
                    Ok(addr) => break addr,
                    Err(e) => {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unparseable listen line {rest:?}: {e}"),
                        ));
                    }
                }
            }
        };
        // Keep draining the child's stdout so it can never block on a full
        // pipe; the thread dies with the pipe when the child does.
        std::thread::Builder::new()
            .name("flow-backend-drain".to_string())
            .spawn(move || {
                let mut sink = String::new();
                loop {
                    sink.clear();
                    match lines.read_line(&mut sink) {
                        Ok(0) | Err(_) => return,
                        Ok(_) => {}
                    }
                }
            })
            .expect("spawn stdout drain");
        Ok(BackendHandle {
            addr,
            kind: HandleKind::Process(child),
        })
    }
}

/// Launches in-process [`FlowServer`]s — no child processes, so tests and
/// the eval harness can stand up a whole fleet inside one test binary.
pub struct InProcessLauncher {
    /// Seed program source each instance compiles at startup.
    pub source: String,
    /// Engine/service worker threads per instance (`0` = auto).
    pub workers: usize,
    /// Shared summary-cache directory, when warm-starting is wanted.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Auth token each instance requires, matching the router's
    /// backend token.
    pub auth_token: Option<String>,
}

impl BackendLauncher for InProcessLauncher {
    fn launch(&self) -> io::Result<BackendHandle> {
        use flowistry_core::{AnalysisParams, Condition};
        use flowistry_engine::{AnalysisEngine, EngineConfig, FlowService, ServiceConfig};
        use flowistry_server::{FlowServer, ServerConfig};

        let program = flowistry_lang::compile(&self.source)
            .map_err(|d| io::Error::new(io::ErrorKind::InvalidData, d.message))?;
        let mut engine_config = EngineConfig::default()
            .with_params(AnalysisParams::for_condition(Condition::WHOLE_PROGRAM))
            .with_threads(self.workers)
            .with_metrics(Arc::new(Registry::new()));
        if let Some(dir) = &self.cache_dir {
            engine_config = engine_config.with_cache_path(dir);
        }
        let engine = AnalysisEngine::new(Arc::new(program), engine_config);
        let service = FlowService::new(engine, ServiceConfig::default().with_workers(self.workers));
        let mut server_config = ServerConfig::default().with_max_connections(8);
        if let Some(token) = &self.auth_token {
            server_config = server_config.with_auth_token(token.clone());
        }
        let server = FlowServer::bind(service, "127.0.0.1:0", server_config)?;
        Ok(BackendHandle {
            addr: server.local_addr(),
            kind: HandleKind::InProcess(server),
        })
    }
}

/// What a routed request gets back from the backend pool.
pub(crate) enum BackendReply {
    /// The backend's verbatim response line.
    Line(String),
}

/// The shared pipelined data connection to one backend. All client
/// connections' routed requests multiplex over it; responses come back in
/// write order, so an in-order queue of reply senders is enough to match
/// them up.
struct BackendConn {
    writer: TcpStream,
    /// Senders for responses not yet received, in request order. Shared
    /// with the reader thread, which pops the front per response line.
    inflight: Arc<Mutex<VecDeque<Sender<BackendReply>>>>,
    /// Set by the reader thread when the connection dies.
    dead: Arc<AtomicBool>,
}

impl BackendConn {
    fn open(addr: SocketAddr, auth_token: Option<&str>) -> io::Result<BackendConn> {
        // The backend-connect failpoint: an injected error here looks to
        // the router exactly like a refused/timed-out connect, which is
        // what feeds the circuit breaker. (`partial_write` has no torn
        // frame to model before a connection exists; it degrades to err.)
        match flowistry_fault::check(fault_sites::BACKEND_CONNECT) {
            Fault::None => {}
            Fault::Delay(d) => std::thread::sleep(d),
            Fault::Err | Fault::PartialWrite(_) => {
                return Err(flowistry_fault::injected_error(
                    fault_sites::BACKEND_CONNECT,
                ))
            }
            Fault::Panic => {
                panic!("failpoint {}: injected panic", fault_sites::BACKEND_CONNECT)
            }
        }
        let config = ClientConfig::default().with_connect_timeout(BACKEND_CONNECT_TIMEOUT);
        let stream = {
            // Reuse FlowClient's transient-retry logic for the raw stream.
            let client = FlowClient::connect_retry(addr, &config, BACKEND_CONNECT_ATTEMPTS)?;
            client.into_stream()?
        };
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        if let Some(token) = auth_token {
            writeln!(writer, "{}", flowistry_server::codec::encode_auth(token))?;
            writer.flush()?;
            let mut line = String::new();
            reader.read_line(&mut line)?;
            if line.trim_end() != flowistry_server::codec::AUTHED_LINE {
                return Err(io::Error::new(
                    io::ErrorKind::PermissionDenied,
                    format!("backend {addr} rejected auth: {}", line.trim_end()),
                ));
            }
        }
        let inflight: Arc<Mutex<VecDeque<Sender<BackendReply>>>> =
            Arc::new(Mutex::new(VecDeque::new()));
        let dead = Arc::new(AtomicBool::new(false));
        {
            let inflight = inflight.clone();
            let dead = dead.clone();
            std::thread::Builder::new()
                .name("flow-backend-read".to_string())
                .spawn(move || {
                    let mut line = String::new();
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => break,
                            // A line with no trailing newline is the torn
                            // tail of a frame cut off by the backend dying
                            // mid-write: drop it and let failover re-serve
                            // the request rather than forward garbage.
                            Ok(_) if !line.ends_with('\n') => break,
                            Ok(_) => {}
                        }
                        let trimmed = line.trim_end_matches(['\r', '\n']).to_string();
                        let sender = inflight.lock().expect("inflight lock").pop_front();
                        match sender {
                            Some(tx) => {
                                let _ = tx.send(BackendReply::Line(trimmed));
                            }
                            None => break, // response with no request: protocol torn
                        }
                    }
                    dead.store(true, Ordering::SeqCst);
                    // Drop every waiting sender: receivers see a closed
                    // channel and count their request as lost.
                    inflight.lock().expect("inflight lock").clear();
                })
                .expect("spawn backend reader");
        }
        Ok(BackendConn {
            writer,
            inflight,
            dead,
        })
    }

    /// Writes one request line, returning the receiver its response will
    /// arrive on. The enqueue and the write happen under the caller's
    /// exclusive borrow, so the inflight order always matches the write
    /// order.
    fn send(&mut self, line: &str) -> io::Result<Receiver<BackendReply>> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "backend connection lost",
            ));
        }
        // The backend-send failpoint. `err` fails the send before the
        // request is enqueued (the caller fails over to the next ring
        // successor); `partial_write` writes a torn frame and kills the
        // connection — leaving it alive would desync every response
        // behind the tear.
        match flowistry_fault::check(fault_sites::BACKEND_SEND) {
            Fault::None => {}
            Fault::Delay(d) => std::thread::sleep(d),
            Fault::Err => return Err(flowistry_fault::injected_error(fault_sites::BACKEND_SEND)),
            Fault::PartialWrite(frac) => {
                let cut = (line.len() as f64 * frac) as usize;
                let _ = self.writer.write_all(&line.as_bytes()[..cut]);
                let _ = self.writer.flush();
                self.dead.store(true, Ordering::SeqCst);
                self.inflight.lock().expect("inflight lock").clear();
                return Err(flowistry_fault::injected_error(fault_sites::BACKEND_SEND));
            }
            Fault::Panic => {
                panic!("failpoint {}: injected panic", fault_sites::BACKEND_SEND)
            }
        }
        let (tx, rx) = channel();
        self.inflight.lock().expect("inflight lock").push_back(tx);
        if writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .is_err()
        {
            self.dead.store(true, Ordering::SeqCst);
            self.inflight.lock().expect("inflight lock").clear();
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "backend write failed",
            ));
        }
        Ok(rx)
    }
}

/// Per-backend observability, labeled by ring slot.
pub(crate) struct BackendMetrics {
    pub(crate) requests: Arc<Counter>,
    pub(crate) errors: Arc<Counter>,
    pub(crate) retries: Arc<Counter>,
    pub(crate) respawns: Arc<Counter>,
    pub(crate) healthy: Arc<Gauge>,
    pub(crate) breaker_state: Arc<Gauge>,
}

impl BackendMetrics {
    fn new(registry: &Registry, index: usize) -> BackendMetrics {
        let label = [("backend", index.to_string())];
        let labels: Vec<(&str, &str)> = label.iter().map(|(k, v)| (*k, v.as_str())).collect();
        BackendMetrics {
            requests: registry.counter(
                &flowistry_obs::labeled("flow_router_backend_requests_total", &labels),
                "Requests routed to this backend",
            ),
            errors: registry.counter(
                &flowistry_obs::labeled("flow_router_backend_errors_total", &labels),
                "Requests that failed against this backend",
            ),
            retries: registry.counter(
                &flowistry_obs::labeled("flow_router_backend_retries_total", &labels),
                "Requests retried away from this backend after a loss",
            ),
            respawns: registry.counter(
                &flowistry_obs::labeled("flow_router_backend_respawns_total", &labels),
                "Times the supervisor respawned this backend",
            ),
            healthy: registry.gauge(
                &flowistry_obs::labeled("flow_router_backend_healthy", &labels),
                "1 when this backend serves traffic, 0 while it is down",
            ),
            breaker_state: registry.gauge(
                &flowistry_obs::labeled("flow_breaker_state", &labels),
                "Circuit breaker state: 0 closed, 1 open, 2 half-open",
            ),
        }
    }
}

/// Circuit-breaker states, stored in [`Backend::breaker`] (and exported
/// verbatim as the `flow_breaker_state` gauge).
pub(crate) const BREAKER_CLOSED: u8 = 0;
pub(crate) const BREAKER_OPEN: u8 = 1;
pub(crate) const BREAKER_HALF_OPEN: u8 = 2;

/// One ring slot of the fleet: the launcher that makes instances, the
/// current instance, its connections, and its health state.
pub(crate) struct Backend {
    pub(crate) index: usize,
    launcher: Box<dyn BackendLauncher>,
    /// The live instance (`None` between a detected death and the respawn).
    pub(crate) handle: Mutex<Option<BackendHandle>>,
    /// The shared pipelined data connection, opened lazily.
    conn: Mutex<Option<BackendConn>>,
    /// The control connection: health probes, updates, replay, shutdown.
    pub(crate) control: Mutex<Option<FlowClient>>,
    pub(crate) healthy: AtomicBool,
    /// Circuit-breaker state ([`BREAKER_CLOSED`]/[`BREAKER_OPEN`]/
    /// [`BREAKER_HALF_OPEN`]): the data-path complement to health probes.
    /// Probes take `failure_threshold * health_interval` to notice a dead
    /// backend; the breaker trips on consecutive *send* failures, so
    /// routed traffic stops hammering a struggling replica within
    /// milliseconds instead.
    breaker: AtomicU8,
    /// Consecutive failed sends (reset by any success).
    send_failures: AtomicU32,
    /// When the breaker last opened (None = never).
    breaker_opened_at: Mutex<Option<Instant>>,
    /// Consecutive failed health probes.
    pub(crate) probe_failures: AtomicU32,
    /// Epoch of the last update this backend applied (0 = seed program).
    pub(crate) synced_epoch: AtomicU64,
    pub(crate) auth_token: Option<String>,
    pub(crate) metrics: BackendMetrics,
}

impl Backend {
    pub(crate) fn launch(
        index: usize,
        launcher: Box<dyn BackendLauncher>,
        auth_token: Option<String>,
        registry: &Registry,
    ) -> io::Result<Backend> {
        let handle = launcher.launch()?;
        let metrics = BackendMetrics::new(registry, index);
        metrics.healthy.set(1);
        Ok(Backend {
            index,
            launcher,
            handle: Mutex::new(Some(handle)),
            conn: Mutex::new(None),
            control: Mutex::new(None),
            healthy: AtomicBool::new(true),
            breaker: AtomicU8::new(BREAKER_CLOSED),
            send_failures: AtomicU32::new(0),
            breaker_opened_at: Mutex::new(None),
            probe_failures: AtomicU32::new(0),
            synced_epoch: AtomicU64::new(0),
            auth_token,
            metrics,
        })
    }

    pub(crate) fn addr(&self) -> Option<SocketAddr> {
        self.handle
            .lock()
            .expect("handle lock")
            .as_ref()
            .map(|h| h.addr)
    }

    pub(crate) fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    pub(crate) fn set_healthy(&self, healthy: bool) {
        self.healthy.store(healthy, Ordering::SeqCst);
        self.metrics.healthy.set(i64::from(healthy));
    }

    /// Whether the circuit breaker lets a send through. Closed: always.
    /// Open: only once `cooldown` has elapsed, and then exactly one caller
    /// wins the transition to half-open and carries the probe request —
    /// everyone else keeps failing fast until that probe settles via
    /// [`Backend::record_send_success`] or [`Backend::record_send_failure`].
    pub(crate) fn breaker_allows(&self, cooldown: Duration) -> bool {
        match self.breaker.load(Ordering::SeqCst) {
            BREAKER_CLOSED => true,
            BREAKER_OPEN => {
                let cooled = self
                    .breaker_opened_at
                    .lock()
                    .expect("breaker lock")
                    .is_none_or(|t| t.elapsed() >= cooldown);
                cooled
                    && self
                        .breaker
                        .compare_exchange(
                            BREAKER_OPEN,
                            BREAKER_HALF_OPEN,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    && {
                        self.metrics.breaker_state.set(i64::from(BREAKER_HALF_OPEN));
                        true
                    }
            }
            _ => false, // half-open: the probe is already in flight
        }
    }

    /// A send (or its response) succeeded: close the breaker.
    pub(crate) fn record_send_success(&self) {
        self.send_failures.store(0, Ordering::SeqCst);
        if self.breaker.swap(BREAKER_CLOSED, Ordering::SeqCst) != BREAKER_CLOSED {
            self.metrics.breaker_state.set(i64::from(BREAKER_CLOSED));
        }
    }

    /// A send failed (or its response was lost): after `threshold`
    /// consecutive failures — or immediately, if this was the half-open
    /// probe — the breaker opens.
    pub(crate) fn record_send_failure(&self, threshold: u32) {
        let failures = self.send_failures.fetch_add(1, Ordering::SeqCst) + 1;
        let state = self.breaker.load(Ordering::SeqCst);
        if state == BREAKER_HALF_OPEN || (state == BREAKER_CLOSED && failures >= threshold) {
            *self.breaker_opened_at.lock().expect("breaker lock") = Some(Instant::now());
            self.breaker.store(BREAKER_OPEN, Ordering::SeqCst);
            self.metrics.breaker_state.set(i64::from(BREAKER_OPEN));
        }
    }

    /// Current breaker state (one of the `BREAKER_*` constants).
    pub(crate) fn breaker_state(&self) -> u8 {
        self.breaker.load(Ordering::SeqCst)
    }

    /// Sends one routed request line over the shared data connection,
    /// opening (and authenticating) it first when needed.
    pub(crate) fn send(&self, line: &str) -> io::Result<Receiver<BackendReply>> {
        let mut conn = self.conn.lock().expect("backend conn lock");
        if conn.as_ref().is_none_or(|c| c.dead.load(Ordering::SeqCst)) {
            let addr = self
                .addr()
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "backend is down"))?;
            *conn = Some(BackendConn::open(addr, self.auth_token.as_deref())?);
        }
        let result = conn.as_mut().expect("conn just opened").send(line);
        if result.is_ok() {
            self.metrics.requests.inc();
        } else {
            self.metrics.errors.inc();
        }
        result
    }

    /// Drops the data connection (the respawn path: the old instance's
    /// socket must not leak onto the new instance).
    pub(crate) fn reset_conns(&self) {
        *self.conn.lock().expect("backend conn lock") = None;
        *self.control.lock().expect("backend control lock") = None;
    }

    /// Opens (or reuses) the control connection with `read_timeout`.
    pub(crate) fn control_client(
        &self,
        read_timeout: Option<Duration>,
    ) -> io::Result<std::sync::MutexGuard<'_, Option<FlowClient>>> {
        let mut control = self.control.lock().expect("backend control lock");
        if control.is_none() {
            let addr = self
                .addr()
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "backend is down"))?;
            let config = ClientConfig::default().with_connect_timeout(BACKEND_CONNECT_TIMEOUT);
            let mut client = FlowClient::connect_retry(addr, &config, BACKEND_CONNECT_ATTEMPTS)?;
            if let Some(token) = &self.auth_token {
                client.auth(token)?;
            }
            *control = Some(client);
        }
        control
            .as_ref()
            .expect("control just opened")
            .set_read_timeout(read_timeout)?;
        Ok(control)
    }

    /// Kills the current instance and launches a replacement. The caller
    /// (the supervisor) replays update history afterwards, before marking
    /// the backend healthy again.
    pub(crate) fn respawn(&self) -> io::Result<SocketAddr> {
        {
            let mut handle = self.handle.lock().expect("handle lock");
            if let Some(h) = handle.as_mut() {
                h.kill();
            }
            *handle = None;
        }
        self.reset_conns();
        let new_handle = self.launcher.launch()?;
        let addr = new_handle.addr;
        *self.handle.lock().expect("handle lock") = Some(new_handle);
        self.synced_epoch.store(0, Ordering::SeqCst);
        // A fresh instance earns a fresh breaker.
        self.record_send_success();
        self.metrics.respawns.inc();
        Ok(addr)
    }
}
