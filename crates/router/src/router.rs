//! [`FlowRouter`]: the fleet front. Accepts client connections speaking
//! the ordinary `flow-server` wire protocol, consistent-hashes each query
//! to a backend replica, fans `update` out to every replica with a quorum
//! ack, health-checks the fleet, and respawns replicas that die.
//!
//! ## Ordering
//!
//! A client sees responses in request order, exactly as against a single
//! server, even though consecutive requests may hit different backends:
//! the connection's reader attaches a response receiver to each routed
//! request *in order*, and the connection's writer drains those receivers
//! in the same order. Backend-side order holds because each backend's
//! pooled connection enqueues the reply slot and writes the request under
//! one lock.
//!
//! ## Failure
//!
//! A request whose backend dies mid-flight is retried on the key's ring
//! successors (bounded by [`RouterConfig::retry_attempts`]); only when
//! every candidate fails does the client see a structured `error`
//! envelope. The supervisor probes each backend's control connection with
//! `stats`; after [`RouterConfig::failure_threshold`] consecutive misses
//! the instance is killed, relaunched (warm-starting from the shared
//! summary-cache dir), re-authenticated, caught up by replaying the full
//! update history, and only then marked healthy for routing again.

use crate::backend::{Backend, BackendLauncher, BackendReply};
use crate::ring::HashRing;
use flowistry_engine::{QueryEnvelope, QueryRequest, QueryResponse};
use flowistry_obs::{Counter, Gauge, Histogram, Registry};
use flowistry_server::budget::{constant_time_eq, read_line_bounded, BoundedLine, RateLimiter};
use flowistry_server::codec::{self, Command};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Fleet-front configuration. The budget knobs (auth, rate, line size)
/// mirror [`flowistry_server::ServerConfig`] — the router applies them at
/// the edge so hostile traffic is rejected before it touches a backend.
#[derive(Clone, Debug, Default)]
pub struct RouterConfig {
    /// Virtual nodes per backend on the hash ring (`0` = default).
    pub vnodes: usize,
    /// Live client connection cap (`0` = `FLOWISTRY_ENGINE_THREADS` or
    /// available parallelism).
    pub max_connections: usize,
    /// Token clients must present via `auth` (`None` = open front).
    pub auth_token: Option<String>,
    /// Token the router presents to backends (`None` = backends are open).
    pub backend_auth_token: Option<String>,
    /// Per-connection request rate budget (`0.0` = unlimited).
    pub rate_limit: f64,
    /// Burst ceiling for the rate budget (`0` = 64).
    pub rate_burst: u32,
    /// Request-line size budget in bytes (`0` = 1 MiB).
    pub max_line_bytes: usize,
    /// `update` body size budget in bytes (`0` = 16 MiB).
    pub max_update_bytes: usize,
    /// Health-probe period (`None` = 250ms).
    pub health_interval: Option<Duration>,
    /// Health-probe read timeout (`None` = 2s).
    pub probe_timeout: Option<Duration>,
    /// Consecutive probe failures before a respawn (`0` = 3).
    pub failure_threshold: u32,
    /// Attempts per routed request across ring successors (`0` = 3).
    pub retry_attempts: u32,
    /// Consecutive send failures before a backend's circuit opens
    /// (`0` = 5).
    pub breaker_threshold: u32,
    /// How long an open circuit waits before letting one half-open probe
    /// request through (`None` = 500ms).
    pub breaker_cooldown: Option<Duration>,
    /// Metrics registry (`None` = a private one; see
    /// [`FlowRouter::metrics_registry`]).
    pub registry: Option<Arc<Registry>>,
}

impl RouterConfig {
    /// Sets the client-facing auth token.
    pub fn with_auth_token(mut self, token: impl Into<String>) -> Self {
        self.auth_token = Some(token.into());
        self
    }

    /// Sets the token presented to backends.
    pub fn with_backend_auth_token(mut self, token: impl Into<String>) -> Self {
        self.backend_auth_token = Some(token.into());
        self
    }

    /// Sets the per-connection rate budget.
    pub fn with_rate_limit(mut self, per_sec: f64, burst: u32) -> Self {
        self.rate_limit = per_sec;
        self.rate_burst = burst;
        self
    }

    /// Sets the request-line size budget.
    pub fn with_max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes;
        self
    }

    /// Sets the live client connection cap.
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max;
        self
    }

    /// Sets the health-probe period.
    pub fn with_health_interval(mut self, interval: Duration) -> Self {
        self.health_interval = Some(interval);
        self
    }

    /// Sets the consecutive-failure threshold for respawn.
    pub fn with_failure_threshold(mut self, threshold: u32) -> Self {
        self.failure_threshold = threshold;
        self
    }

    /// Sets the metrics registry.
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    fn effective_max_line_bytes(&self) -> usize {
        if self.max_line_bytes == 0 {
            1 << 20
        } else {
            self.max_line_bytes
        }
    }

    fn effective_max_update_bytes(&self) -> usize {
        if self.max_update_bytes == 0 {
            16 << 20
        } else {
            self.max_update_bytes
        }
    }

    fn effective_rate_burst(&self) -> u32 {
        if self.rate_burst == 0 {
            64
        } else {
            self.rate_burst
        }
    }

    fn effective_health_interval(&self) -> Duration {
        self.health_interval.unwrap_or(Duration::from_millis(250))
    }

    fn effective_probe_timeout(&self) -> Duration {
        self.probe_timeout.unwrap_or(Duration::from_secs(2))
    }

    fn effective_failure_threshold(&self) -> u32 {
        if self.failure_threshold == 0 {
            3
        } else {
            self.failure_threshold
        }
    }

    fn effective_retry_attempts(&self) -> u32 {
        if self.retry_attempts == 0 {
            3
        } else {
            self.retry_attempts
        }
    }

    fn effective_breaker_threshold(&self) -> u32 {
        if self.breaker_threshold == 0 {
            5
        } else {
            self.breaker_threshold
        }
    }

    fn effective_breaker_cooldown(&self) -> Duration {
        self.breaker_cooldown.unwrap_or(Duration::from_millis(500))
    }
}

/// Fleet-front counters and latency histograms.
struct RouterMetrics {
    connections: Arc<Counter>,
    requests: Arc<Counter>,
    decode_errors: Arc<Counter>,
    auth_failures: Arc<Counter>,
    rate_limited: Arc<Counter>,
    oversize_lines: Arc<Counter>,
    updates: Arc<Counter>,
    update_quorum_failures: Arc<Counter>,
    lost_requests: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    history_bytes: Arc<Gauge>,
    /// Submit-to-flush route latency, one histogram per request kind.
    route_seconds: Vec<Arc<Histogram>>,
}

impl RouterMetrics {
    fn new(registry: &Registry) -> RouterMetrics {
        RouterMetrics {
            connections: registry.counter(
                "flow_router_connections_total",
                "Client connections accepted by the router",
            ),
            requests: registry.counter(
                "flow_router_requests_total",
                "Client command lines successfully decoded",
            ),
            decode_errors: registry.counter(
                "flow_router_decode_errors_total",
                "Client command lines rejected by the codec",
            ),
            auth_failures: registry.counter(
                "flow_router_auth_failures_total",
                "Commands rejected for missing or wrong auth preamble",
            ),
            rate_limited: registry.counter(
                "flow_router_rate_limited_total",
                "Commands rejected by the per-connection rate budget",
            ),
            oversize_lines: registry.counter(
                "flow_router_oversize_lines_total",
                "Request lines rejected by the per-connection size budget",
            ),
            updates: registry.counter(
                "flow_router_updates_total",
                "Update broadcasts that reached quorum",
            ),
            update_quorum_failures: registry.counter(
                "flow_router_update_quorum_failures_total",
                "Update broadcasts that missed quorum",
            ),
            lost_requests: registry.counter(
                "flow_router_lost_requests_total",
                "Requests answered with a synthesized error after every retry failed",
            ),
            deadline_exceeded: registry.counter(
                "flow_deadline_exceeded_total",
                "Requests answered `error deadline exceeded` because their budget \
                 ran out at the router (waiting on a backend or between retries)",
            ),
            history_bytes: registry.gauge(
                "flow_router_history_bytes",
                "Bytes of update state retained for backend catch-up (the \
                 compacted latest program source, not the full history)",
            ),
            route_seconds: QueryRequest::KINDS
                .iter()
                .map(|kind| {
                    registry.histogram(
                        &format!("flow_router_route_seconds{{kind=\"{kind}\"}}"),
                        "Route latency from request decode to response flush",
                    )
                })
                .collect(),
        }
    }
}

struct RouterShared {
    backends: Vec<Arc<Backend>>,
    ring: HashRing,
    config: RouterConfig,
    registry: Arc<Registry>,
    metrics: RouterMetrics,
    /// Epoch of the newest broadcast update (what locally generated
    /// envelopes are stamped with).
    epoch: AtomicU64,
    /// The *compacted* update history: the latest program source only.
    /// Updates carry complete program source (not diffs), so one pinned
    /// `update ... epoch=<fleet epoch>` brings any backend — respawned or
    /// straggling — fully up to date; retaining every version ever
    /// broadcast was O(updates × source) memory for no extra information.
    /// The lock doubles as the broadcast serialization point.
    latest_update: Mutex<Option<Arc<String>>>,
    /// Round-robin counter spreading non-function-scoped requests.
    round_robin: AtomicU64,
    shutdown: AtomicBool,
    active: Mutex<usize>,
    slot_freed: Condvar,
    conn_streams: Mutex<Vec<Option<TcpStream>>>,
}

impl RouterShared {
    fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    fn error_envelope(&self, msg: String) -> String {
        codec::encode_envelope(&QueryEnvelope {
            epoch: self.current_epoch(),
            response: QueryResponse::Error(msg),
            trace_id: None,
        })
    }

    /// The routing key of a query: function-scoped requests pin to their
    /// function (cache locality — the same backend keeps answering for the
    /// same function); whole-program and introspection requests spread
    /// round-robin.
    fn routing_key(&self, request: &QueryRequest) -> String {
        match request {
            QueryRequest::Summary(f) | QueryRequest::Results(f) | QueryRequest::Lint(f) => {
                format!("func:{}", f.0)
            }
            QueryRequest::BackwardSlice { func, .. }
            | QueryRequest::BackwardSliceAt { func, .. } => format!("func:{}", func.0),
            _ => format!("rr:{}", self.round_robin.fetch_add(1, Ordering::Relaxed)),
        }
    }

    /// Sends `line` to the first candidate that takes it: healthy chain
    /// members with a closed (or probing) breaker from `start` first, then
    /// (all unhealthy — a fleet-wide brown-out) anyone whose breaker
    /// allows it. Returns the chosen backend index and the reply receiver.
    fn send_via_chain(
        &self,
        chain: &[usize],
        start: usize,
        line: &str,
    ) -> Option<(usize, Receiver<BackendReply>)> {
        let threshold = self.config.effective_breaker_threshold();
        let cooldown = self.config.effective_breaker_cooldown();
        for only_healthy in [true, false] {
            for offset in 0..chain.len() {
                let index = chain[(start + offset) % chain.len()];
                let backend = &self.backends[index];
                if only_healthy && !backend.is_healthy() {
                    continue;
                }
                if !backend.breaker_allows(cooldown) {
                    continue;
                }
                match backend.send(line) {
                    Ok(rx) => return Some((index, rx)),
                    Err(_) => backend.record_send_failure(threshold),
                }
            }
        }
        None
    }

    /// Broadcasts one update to every backend and records it as the new
    /// compacted history. Returns the ack line for the requesting client.
    fn broadcast_update(&self, source: String) -> String {
        // One broadcast at a time: the latest-update lock doubles as the
        // serialization point, so every backend applies the same sources
        // in the same order and epochs agree fleet-wide.
        let mut latest = self.latest_update.lock().expect("update history lock");
        let expected_epoch = self.epoch.load(Ordering::SeqCst) + 1;
        let source = Arc::new(source);
        // Pin the broadcast to the fleet epoch: a backend that missed
        // earlier updates (or was respawned mid-broadcast) fast-forwards
        // its counter instead of landing on a stale epoch — the source is
        // the complete program, so the fast-forward loses nothing.
        let results: Vec<io::Result<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .backends
                .iter()
                .map(|backend| {
                    let source = source.clone();
                    s.spawn(move || apply_update(backend, &source, Some(expected_epoch)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("update thread"))
                .collect()
        });
        let results: Vec<io::Result<u64>> = results
            .into_iter()
            .map(|r| match r {
                Ok(epoch) if epoch != expected_epoch => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("backend applied update as epoch {epoch}, not {expected_epoch}"),
                )),
                other => other,
            })
            .collect();
        let applied = results.iter().filter(|r| r.is_ok()).count();
        if applied == 0 {
            // Nothing changed anywhere (typically a compile error, which
            // every replica rejects identically): report the first error.
            self.metrics.update_quorum_failures.inc();
            let msg = results
                .iter()
                .find_map(|r| r.as_ref().err().map(|e| e.to_string()))
                .unwrap_or_else(|| "no backends".to_string());
            return self.error_envelope(format!("update failed on all backends: {msg}"));
        }
        // At least one replica now serves the new epoch, so the update is
        // real: compact the history to it (respawns and stragglers catch
        // up from this one source) and advance the fleet epoch.
        self.metrics.history_bytes.set(source.len() as i64);
        *latest = Some(source);
        self.epoch.store(expected_epoch, Ordering::SeqCst);
        for (backend, result) in self.backends.iter().zip(&results) {
            match result {
                Ok(epoch) => {
                    backend.synced_epoch.store(*epoch, Ordering::SeqCst);
                    // The pinned update carried the complete program, so
                    // even a straggler that missed earlier broadcasts is
                    // fully caught up now.
                    backend.set_healthy(true);
                }
                Err(_) => {
                    // Missed the update: stop routing to it until the
                    // supervisor respawns and replays it back into sync.
                    backend.metrics.errors.inc();
                    backend.set_healthy(false);
                    backend.reset_conns();
                }
            }
        }
        let quorum = self.backends.len() / 2 + 1;
        if applied >= quorum {
            self.metrics.updates.inc();
            codec::encode_update_ack(expected_epoch)
        } else {
            self.metrics.update_quorum_failures.inc();
            self.error_envelope(format!(
                "update applied on {applied}/{} backends (quorum {quorum}); \
                 epoch {expected_epoch} will converge as replicas respawn",
                self.backends.len()
            ))
        }
    }
}

/// Applies one update through a backend's control connection, returning
/// the epoch the backend reports. `target_epoch` pins the update to a
/// fleet epoch (the backend fast-forwards its counter to match).
fn apply_update(backend: &Backend, source: &str, target_epoch: Option<u64>) -> io::Result<u64> {
    // Updates recompile and re-analyze server-side: give them a generous
    // budget, not the probe timeout.
    let mut control = backend.control_client(Some(Duration::from_secs(120)))?;
    let client = control.as_mut().expect("control open");
    match client.update_at(source, target_epoch) {
        Ok(epoch) => Ok(epoch),
        Err(e) => {
            // The control connection may be desynced after a failed
            // update; drop it so the next use reconnects cleanly.
            *control = None;
            Err(e)
        }
    }
}

/// The running fleet front: see the [module docs](self).
pub struct FlowRouter {
    shared: Arc<RouterShared>,
    local_addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    health_handle: Option<JoinHandle<()>>,
}

impl FlowRouter {
    /// Launches one backend per launcher, binds `addr`, and starts
    /// routing. Fails if any backend fails to launch.
    pub fn start(
        launchers: Vec<Box<dyn BackendLauncher>>,
        addr: impl ToSocketAddrs,
        config: RouterConfig,
    ) -> io::Result<FlowRouter> {
        if launchers.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a fleet needs at least one backend",
            ));
        }
        let registry = config
            .registry
            .clone()
            .unwrap_or_else(|| Arc::new(Registry::new()));
        let mut backends = Vec::with_capacity(launchers.len());
        for (index, launcher) in launchers.into_iter().enumerate() {
            backends.push(Arc::new(Backend::launch(
                index,
                launcher,
                config.backend_auth_token.clone(),
                &registry,
            )?));
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let max_connections =
            flowistry_engine::scheduler::resolve_worker_threads(config.max_connections);
        let ring = HashRing::new(backends.len(), config.vnodes);
        let metrics = RouterMetrics::new(&registry);
        let shared = Arc::new(RouterShared {
            backends,
            ring,
            config,
            registry,
            metrics,
            epoch: AtomicU64::new(0),
            latest_update: Mutex::new(None),
            round_robin: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            active: Mutex::new(0),
            slot_freed: Condvar::new(),
            conn_streams: Mutex::new(Vec::new()),
        });
        let accept_handle = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("flow-router-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener, max_connections))
                .expect("spawn router accept loop")
        };
        let health_handle = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("flow-router-health".to_string())
                .spawn(move || health_loop(&shared))
                .expect("spawn router health loop")
        };
        Ok(FlowRouter {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
            health_handle: Some(health_handle),
        })
    }

    /// The address the router listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry holding every router metric (what the wire `metrics`
    /// command renders).
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// Number of backends in the fleet.
    pub fn backend_count(&self) -> usize {
        self.shared.backends.len()
    }

    /// The current address of backend `index` (`None` while it is down).
    pub fn backend_addr(&self, index: usize) -> Option<SocketAddr> {
        self.shared.backends.get(index).and_then(|b| b.addr())
    }

    /// Whether backend `index` currently serves traffic.
    pub fn backend_healthy(&self, index: usize) -> bool {
        self.shared
            .backends
            .get(index)
            .is_some_and(|b| b.is_healthy())
    }

    /// Backend `index`'s circuit-breaker state: 0 closed, 1 open, 2
    /// half-open (mirrors the `flow_breaker_state` gauge).
    pub fn backend_breaker_state(&self, index: usize) -> u8 {
        self.shared
            .backends
            .get(index)
            .map_or(0, |b| b.breaker_state())
    }

    /// The chaos hook: kills backend `index`'s instance out from under the
    /// fleet, exactly as a crash would. The supervisor is left to notice
    /// and respawn it.
    pub fn kill_backend(&self, index: usize) {
        if let Some(backend) = self.shared.backends.get(index) {
            if let Some(handle) = backend.handle.lock().expect("handle lock").as_mut() {
                handle.kill();
            }
        }
    }

    /// Whether a shutdown has been initiated (wire `shutdown` or
    /// [`FlowRouter::shutdown`]).
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Initiates a graceful shutdown: stop accepting, cut client readers
    /// loose (their writers still flush), stop the supervisor, tear the
    /// backends down.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared, self.local_addr);
    }

    /// Blocks until the router has shut down.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FlowRouter {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.health_handle.take() {
            let _ = handle.join();
        }
        let mut active = self.shared.active.lock().expect("router active lock");
        while *active > 0 {
            active = self
                .shared
                .slot_freed
                .wait(active)
                .expect("router active lock");
        }
        // Backends (and their child processes / in-process servers) die
        // with the shared state when the last Arc drops — which is now,
        // barring a straggling connection thread that still holds one.
    }
}

fn initiate_shutdown(shared: &RouterShared, local_addr: SocketAddr) {
    let first = !shared.shutdown.swap(true, Ordering::SeqCst);
    let _ = TcpStream::connect(local_addr);
    {
        let _guard = shared.active.lock().expect("router active lock");
        shared.slot_freed.notify_all();
    }
    if !first {
        return;
    }
    let streams = shared.conn_streams.lock().expect("conn stream lock");
    for stream in streams.iter().flatten() {
        let _ = stream.shutdown(Shutdown::Read);
    }
}

fn register_stream(shared: &RouterShared, stream: &TcpStream) -> Option<usize> {
    let clone = stream.try_clone().ok()?;
    let mut streams = shared.conn_streams.lock().expect("conn stream lock");
    match streams.iter().position(Option::is_none) {
        Some(i) => {
            streams[i] = Some(clone);
            Some(i)
        }
        None => {
            streams.push(Some(clone));
            Some(streams.len() - 1)
        }
    }
}

fn unregister_stream(shared: &RouterShared, slot: Option<usize>) {
    if let Some(i) = slot {
        shared.conn_streams.lock().expect("conn stream lock")[i] = None;
    }
}

fn release_slot(shared: &RouterShared) {
    let mut active = shared.active.lock().expect("router active lock");
    *active -= 1;
    shared.slot_freed.notify_all();
}

fn accept_loop(shared: &Arc<RouterShared>, listener: &TcpListener, max_connections: usize) {
    loop {
        {
            let mut active = shared.active.lock().expect("router active lock");
            while *active >= max_connections && !shared.shutdown.load(Ordering::SeqCst) {
                active = shared.slot_freed.wait(active).expect("router active lock");
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            *active += 1;
        }
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                release_slot(shared);
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            release_slot(shared);
            break;
        }
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        let Some(slot) = register_stream(shared, &stream) else {
            drop(stream);
            release_slot(shared);
            continue;
        };
        let slot = Some(slot);
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            unregister_stream(shared, slot);
            release_slot(shared);
            break;
        }
        let shared_for_conn = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("flow-router-conn".to_string())
            .spawn(move || {
                handle_connection(&shared_for_conn, stream);
                unregister_stream(&shared_for_conn, slot);
                release_slot(&shared_for_conn);
            });
        if spawned.is_err() {
            unregister_stream(shared, slot);
            release_slot(shared);
        }
    }
}

/// What the connection's reader hands its writer, in request order.
enum Pending {
    /// A pre-rendered response line (local answers, errors, acks, `bye`).
    Line(String),
    /// A routed request: the receiver its response arrives on, plus
    /// everything needed to retry it if the backend dies mid-flight.
    Routed {
        rx: Receiver<BackendReply>,
        /// The verbatim request line, for retries.
        line: String,
        /// Fallback order across backends (ring chain of the routing key).
        chain: Vec<usize>,
        /// Position in `chain` the current attempt used.
        position: usize,
        /// Attempts used so far (first send counts as one).
        attempts: u32,
        decoded_at: Instant,
        /// When the client's `deadline=` budget runs out (None = no
        /// deadline). Bounds both the wait on a backend and the failover
        /// retries: once spent, the client gets `error deadline exceeded`
        /// instead of a late answer it no longer wants.
        deadline: Option<Instant>,
        kind: usize,
    },
}

fn handle_connection(shared: &Arc<RouterShared>, stream: TcpStream) {
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let (tx, rx) = std::sync::mpsc::channel::<Pending>();
    let writer_stream = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    shared.metrics.connections.inc();
    let shared_for_writer = shared.clone();
    let writer = std::thread::Builder::new()
        .name("flow-router-conn-writer".to_string())
        .spawn(move || writer_loop(&shared_for_writer, writer_stream, rx));
    let Ok(writer) = writer else { return };

    let shutdown_requested = reader_loop(shared, reader, &tx);

    drop(tx);
    let _ = writer.join();
    if shutdown_requested {
        let addr = stream
            .local_addr()
            .unwrap_or_else(|_| SocketAddr::from(([127, 0, 0, 1], 0)));
        initiate_shutdown(shared, addr);
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Reads client request lines, enforcing the edge budgets, routing queries
/// and broadcasting updates. Returns whether a fleet shutdown was
/// requested.
fn reader_loop(
    shared: &Arc<RouterShared>,
    mut reader: BufReader<TcpStream>,
    tx: &Sender<Pending>,
) -> bool {
    let mut line = String::new();
    let max_line = shared.config.effective_max_line_bytes();
    let mut limiter = RateLimiter::new(
        shared.config.rate_limit,
        shared.config.effective_rate_burst(),
    );
    let mut authed = shared.config.auth_token.is_none();
    loop {
        match read_line_bounded(&mut reader, &mut line, max_line) {
            Err(_) | Ok(BoundedLine::Eof) => return false,
            Ok(BoundedLine::Line(_)) => {}
            Ok(BoundedLine::TooLong(_)) => {
                shared.metrics.oversize_lines.inc();
                let reply = shared
                    .error_envelope(format!("request line exceeds the {max_line}-byte budget"));
                if tx.send(Pending::Line(reply)).is_err() {
                    return false;
                }
                continue;
            }
        }
        if line.is_empty() {
            continue;
        }
        if !limiter.allow() {
            shared.metrics.rate_limited.inc();
            let reply = shared.error_envelope(format!(
                "rate limit exceeded ({} requests/s)",
                shared.config.rate_limit
            ));
            if tx.send(Pending::Line(reply)).is_err() {
                return false;
            }
            continue;
        }
        let decoded_at = Instant::now();
        let command = codec::decode_command(&line);
        if !authed && !matches!(command, Ok(Command::Auth { .. })) {
            shared.metrics.auth_failures.inc();
            let reply = shared
                .error_envelope("authentication required: send `auth <token>` first".to_string());
            if tx.send(Pending::Line(reply)).is_err() {
                return false;
            }
            continue;
        }
        let pending = match command {
            Err(msg) => {
                shared.metrics.decode_errors.inc();
                Pending::Line(shared.error_envelope(format!("malformed request: {msg}")))
            }
            Ok(Command::Auth { token }) => {
                shared.metrics.requests.inc();
                let accepted = match &shared.config.auth_token {
                    Some(expected) => constant_time_eq(expected.as_bytes(), token.as_bytes()),
                    None => true,
                };
                if accepted {
                    authed = true;
                    Pending::Line(codec::AUTHED_LINE.to_string())
                } else {
                    shared.metrics.auth_failures.inc();
                    Pending::Line(shared.error_envelope("bad auth token".to_string()))
                }
            }
            Ok(Command::Query {
                request,
                trace_id,
                deadline_ms,
            }) => {
                shared.metrics.requests.inc();
                if matches!(request, QueryRequest::Metrics) {
                    // The router answers `metrics` itself: its registry
                    // carries the fleet's routing/health series. Backend
                    // engine metrics are scraped per backend.
                    Pending::Line(codec::encode_envelope(&QueryEnvelope {
                        epoch: shared.current_epoch(),
                        response: QueryResponse::Metrics(shared.registry.render_prometheus()),
                        trace_id,
                    }))
                } else {
                    let key = shared.routing_key(&request);
                    let chain: Vec<usize> = shared.ring.route_chain(&key).collect();
                    let kind = request.kind_index();
                    match shared.send_via_chain(&chain, 0, &line) {
                        Some((index, rx)) => {
                            let position = chain.iter().position(|&i| i == index).unwrap_or(0);
                            Pending::Routed {
                                rx,
                                line: line.clone(),
                                chain,
                                position,
                                attempts: 1,
                                decoded_at,
                                // The raw line (deadline attr included) is
                                // what gets forwarded, so the backend sees
                                // the same budget and sheds on its own.
                                deadline: deadline_ms
                                    .map(|ms| decoded_at + Duration::from_millis(ms)),
                                kind,
                            }
                        }
                        None => {
                            shared.metrics.lost_requests.inc();
                            Pending::Line(
                                shared.error_envelope("router: no backend available".to_string()),
                            )
                        }
                    }
                }
            }
            Ok(Command::Update { bytes, epoch: _ }) => {
                // A client-supplied `epoch=` pin is ignored at the front:
                // the router owns the fleet's epoch numbering.
                shared.metrics.requests.inc();
                Pending::Line(read_and_broadcast_update(shared, &mut reader, bytes))
            }
            Ok(Command::Shutdown) => {
                shared.metrics.requests.inc();
                let _ = tx.send(Pending::Line(codec::BYE_LINE.to_string()));
                return true;
            }
        };
        if tx.send(pending).is_err() {
            return false;
        }
    }
}

/// Reads an `update` body off the client connection and broadcasts it.
/// Returns the response line.
fn read_and_broadcast_update(
    shared: &RouterShared,
    reader: &mut BufReader<TcpStream>,
    bytes: usize,
) -> String {
    let max_update_bytes = shared.config.effective_max_update_bytes();
    if bytes > max_update_bytes {
        if io::copy(&mut reader.by_ref().take(bytes as u64), &mut io::sink()).is_err() {
            return shared.error_envelope("update source truncated".to_string());
        }
        let _ = consume_newline(reader);
        return shared.error_envelope(format!(
            "update of {bytes} bytes exceeds {max_update_bytes}"
        ));
    }
    let mut source = vec![0u8; bytes];
    if reader.read_exact(&mut source).is_err() {
        return shared.error_envelope("update source truncated".to_string());
    }
    if let Err(msg) = consume_newline(reader) {
        return shared.error_envelope(msg);
    }
    let source = match String::from_utf8(source) {
        Ok(s) => s,
        Err(_) => return shared.error_envelope("update source is not UTF-8".to_string()),
    };
    shared.broadcast_update(source)
}

/// Consumes the newline terminating an `update` body (only if present, to
/// preserve framing when clients miscount).
fn consume_newline(reader: &mut BufReader<TcpStream>) -> Result<(), String> {
    match reader.fill_buf() {
        Ok(buf) if buf.first() == Some(&b'\n') => {
            reader.consume(1);
            Ok(())
        }
        Ok([]) => Ok(()),
        Ok(_) => Err("update source not followed by a newline (check <nbytes>)".to_string()),
        Err(_) => Err("update source truncated".to_string()),
    }
}

/// Writes responses in request order. A routed request whose backend died
/// mid-flight is retried here, synchronously — this response is the next
/// one due on the wire anyway, so blocking on the retry preserves order
/// for free. A request carrying a `deadline=` budget waits no longer than
/// that budget, on backends and retries combined.
fn writer_loop(shared: &Arc<RouterShared>, stream: TcpStream, rx: Receiver<Pending>) {
    let mut out = io::BufWriter::new(stream);
    for pending in rx {
        let (line, observed) = match pending {
            Pending::Line(line) => (line, None),
            Pending::Routed {
                mut rx,
                line,
                chain,
                mut position,
                mut attempts,
                decoded_at,
                deadline,
                kind,
            } => {
                let max_attempts = shared.config.effective_retry_attempts();
                let breaker_threshold = shared.config.effective_breaker_threshold();
                let response = loop {
                    let current = &shared.backends[chain[position % chain.len()]];
                    let received = match deadline {
                        None => rx.recv().map_err(|_| false),
                        Some(d) => {
                            let budget = d.saturating_duration_since(Instant::now());
                            rx.recv_timeout(budget).map_err(|e| {
                                matches!(e, std::sync::mpsc::RecvTimeoutError::Timeout)
                            })
                        }
                    };
                    match received {
                        Ok(BackendReply::Line(response)) => {
                            current.record_send_success();
                            break response;
                        }
                        Err(true) => {
                            // The budget ran out while a backend still
                            // held the request. Answer now — a late
                            // response on the pooled connection is
                            // discarded by its (dropped) receiver.
                            shared.metrics.deadline_exceeded.inc();
                            break shared.error_envelope("deadline exceeded".to_string());
                        }
                        Err(false) => {
                            // The backend died with this request in
                            // flight. Rotate to the key's next ring
                            // successor and try again — unless the
                            // deadline budget is already spent.
                            current.metrics.retries.inc();
                            current.record_send_failure(breaker_threshold);
                            if deadline.is_some_and(|d| Instant::now() >= d) {
                                shared.metrics.deadline_exceeded.inc();
                                break shared.error_envelope("deadline exceeded".to_string());
                            }
                            if attempts >= max_attempts {
                                shared.metrics.lost_requests.inc();
                                break shared.error_envelope(format!(
                                    "router: request lost after {attempts} attempts"
                                ));
                            }
                            attempts += 1;
                            match shared.send_via_chain(&chain, position + 1, &line) {
                                Some((index, new_rx)) => {
                                    position =
                                        chain.iter().position(|&i| i == index).unwrap_or(position);
                                    rx = new_rx;
                                }
                                None => {
                                    shared.metrics.lost_requests.inc();
                                    break shared.error_envelope(
                                        "router: no backend available".to_string(),
                                    );
                                }
                            }
                        }
                    }
                };
                (response, Some((decoded_at, kind)))
            }
        };
        if writeln!(out, "{line}").is_err() || out.flush().is_err() {
            return; // client went away
        }
        if let Some((decoded_at, kind)) = observed {
            shared.metrics.route_seconds[kind].observe(decoded_at.elapsed());
        }
    }
}

/// The supervisor: probes every backend's control connection with `stats`,
/// and after enough consecutive misses kills + relaunches the instance,
/// replays the update history into it, and returns it to the ring.
fn health_loop(shared: &Arc<RouterShared>) {
    let interval = shared.config.effective_health_interval();
    let probe_timeout = shared.config.effective_probe_timeout();
    let threshold = shared.config.effective_failure_threshold();
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Sleep in short slices: a long probe interval must not hold the
        // router's shutdown hostage (Drop joins this thread).
        let wake = Instant::now() + interval;
        while Instant::now() < wake && !shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(25).min(interval));
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        for backend in &shared.backends {
            let probe_ok = {
                // `try_lock`, not `lock`: a control connection busy with a
                // long update is evidence of life, not death — and probing
                // behind it would stall the whole sweep.
                match backend.control.try_lock() {
                    Err(_) => continue,
                    Ok(guard) => {
                        drop(guard);
                        probe(backend, probe_timeout)
                    }
                }
            };
            if probe_ok {
                backend.probe_failures.store(0, Ordering::SeqCst);
                // A live replica can still be unroutable: its catch-up
                // replay failed after a respawn or a missed broadcast.
                // Re-sync it here — a healthy probe resets the failure
                // counter, so the respawn path below would never fire for
                // it and it would stay stranded forever otherwise.
                if !backend.is_healthy() {
                    match replay_latest(shared, backend) {
                        Ok(()) => backend.set_healthy(true),
                        Err(e) => flowistry_obs::warn!(
                            "backend {} catch-up replay failed: {e}; will retry",
                            backend.index
                        ),
                    }
                }
                continue;
            }
            let failures = backend.probe_failures.fetch_add(1, Ordering::SeqCst) + 1;
            if failures < threshold {
                continue;
            }
            let supervised = backend
                .handle
                .lock()
                .expect("handle lock")
                .as_ref()
                .is_none_or(|h| h.supervised());
            backend.set_healthy(false);
            backend.reset_conns();
            if !supervised {
                continue; // external backends are somebody else's problem
            }
            match respawn_and_replay(shared, backend) {
                Ok(addr) => {
                    backend.probe_failures.store(0, Ordering::SeqCst);
                    backend.set_healthy(true);
                    // Scraped by fleet scripts, like the server's own
                    // listen line: keep on stdout.
                    println!("flow-router respawned backend {} at {addr}", backend.index);
                    let _ = io::stdout().flush();
                }
                Err(e) => {
                    flowistry_obs::warn!(
                        "backend {} respawn failed: {e}; will retry",
                        backend.index
                    );
                }
            }
        }
    }
}

/// One health probe: a `stats` round-trip on the control connection.
fn probe(backend: &Backend, timeout: Duration) -> bool {
    let result = (|| -> io::Result<()> {
        let mut control = backend.control_client(Some(timeout))?;
        let client = control.as_mut().expect("control open");
        match client.stats() {
            Ok(_) => Ok(()),
            Err(e) => {
                // A failed probe leaves the connection desynced; reconnect
                // next time.
                *control = None;
                Err(e)
            }
        }
    })();
    result.is_ok()
}

/// Kills, relaunches, re-authenticates, and catches the backend up with
/// one update: the compacted latest program source, pinned to the fleet
/// epoch (the backend fast-forwards to it). Replaying every historical
/// version would produce the same final state at N× the recompile cost
/// and O(history) router memory.
fn respawn_and_replay(shared: &RouterShared, backend: &Backend) -> io::Result<SocketAddr> {
    let addr = backend.respawn()?;
    replay_latest(shared, backend)?;
    Ok(addr)
}

/// Catches a live backend up with one update: the compacted latest
/// program source, pinned to the fleet epoch (the backend fast-forwards
/// to it). Also the recovery path for a replica whose earlier replay
/// failed — the replay can fail independently of replica health, so the
/// health sweep retries it on otherwise-healthy but unrouted backends.
fn replay_latest(shared: &RouterShared, backend: &Backend) -> io::Result<()> {
    // Snapshot the compacted history; a concurrent broadcast supersedes
    // it behind us and marks this backend unhealthy again if it misses
    // that update — the next sweep catches it up again.
    let snapshot = {
        let latest = shared.latest_update.lock().expect("update history lock");
        latest
            .clone()
            .map(|s| (s, shared.epoch.load(Ordering::SeqCst)))
    };
    let Some((source, fleet_epoch)) = snapshot else {
        return Ok(()); // no updates yet: the seed program is current
    };
    if backend.synced_epoch.load(Ordering::SeqCst) == fleet_epoch {
        return Ok(()); // already current (e.g. marked down by a probe blip)
    }
    let epoch = apply_update(backend, &source, Some(fleet_epoch))?;
    // The ack proves the latest source applied; the backend may sit *ahead*
    // of the pinned epoch (failed update attempts consume epochs too, and
    // epochs never move backward), but it must never land short of it.
    if epoch < fleet_epoch {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("caught up backend to epoch {fleet_epoch} but it reports {epoch}"),
        ));
    }
    backend.synced_epoch.store(fleet_epoch, Ordering::SeqCst);
    Ok(())
}
