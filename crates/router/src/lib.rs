//! `flowistry-router` — the fleet front for `flow-server` replicas.
//!
//! One `flow-server` scales queries across cores, but a single process is
//! still one address space and one crash domain. This crate adds the next
//! tier: [`FlowRouter`] speaks the same line-oriented wire protocol as
//! `flow-server`, but instead of analyzing anything itself it
//! consistent-hashes each query to one of `N` backend replicas, fans
//! `update` out to all of them with a quorum ack, health-checks the fleet,
//! and respawns replicas that die — warm-starting them from the shared
//! summary-cache directory so a respawn costs a replay, not a
//! re-analysis.
//!
//! The pieces:
//!
//! * [`ring`] — the consistent-hash ring ([`HashRing`]): balanced,
//!   deterministic, and with bounded key movement when replicas join or
//!   leave.
//! * [`backend`] — one managed replica ([`BackendLauncher`] implementors
//!   spawn it; the router pools a pipelined data connection and a control
//!   connection to it, and can kill + relaunch it).
//! * [`router`] — [`FlowRouter`] itself: the accept loop, per-connection
//!   ordering, edge budgets (auth / rate / size), the update broadcast,
//!   and the health supervisor.
//!
//! Clients need nothing new: a [`FlowClient`] pointed at the router works
//! unchanged, because the router preserves per-connection response order
//! across backends.
//!
//! [`FlowClient`]: flowistry_server::FlowClient

pub mod backend;
pub mod ring;
pub mod router;

pub use backend::{BackendHandle, BackendLauncher, InProcessLauncher, ProcessLauncher};
pub use ring::{hash_key, HashRing, DEFAULT_VNODES};
pub use router::{FlowRouter, RouterConfig};
