//! The consistent-hash ring that pins routing keys to backends.
//!
//! Each backend contributes `vnodes` points to a 64-bit ring; a key routes
//! to the first point clockwise from its hash. The properties the fleet
//! depends on (and the property tests pin down):
//!
//! * **Balance** — with enough virtual nodes, each of `n` backends owns
//!   roughly `1/n` of the key space.
//! * **Bounded movement** — adding a backend moves keys *only onto* the
//!   new backend (roughly `1/(n+1)` of them); removing one moves *only its
//!   own* keys. Nothing else reshuffles, so a replica joining or dying
//!   barely disturbs the fleet's summary-cache locality.
//! * **Determinism** — the ring is a pure function of `(backends,
//!   vnodes)`; every router replica computes the same placement.

/// Default virtual nodes per backend: enough that a 3-replica fleet
/// balances within a few percent.
pub const DEFAULT_VNODES: usize = 96;

/// 64-bit FNV-1a, the workspace's standard string hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A 64-bit mixing finalizer (splitmix64's): FNV alone clusters short
/// numeric keys, and clustered points make lumpy ownership arcs.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes one routing key onto the ring.
pub fn hash_key(key: &str) -> u64 {
    mix(fnv1a(key.as_bytes()))
}

/// A consistent-hash ring over backends `0..n`. See the [module
/// docs](self).
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, backend)` pairs sorted by point.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl HashRing {
    /// A ring over backends `0..backends`, each contributing `vnodes`
    /// points (`0` = [`DEFAULT_VNODES`]).
    pub fn new(backends: usize, vnodes: usize) -> HashRing {
        let vnodes = if vnodes == 0 { DEFAULT_VNODES } else { vnodes };
        let mut points = Vec::with_capacity(backends * vnodes);
        for backend in 0..backends {
            for vnode in 0..vnodes {
                // The point depends only on (backend, vnode): rings of
                // different sizes share every common backend's points,
                // which is what makes key movement bounded.
                points.push((
                    mix(fnv1a(format!("b{backend}.v{vnode}").as_bytes())),
                    backend,
                ));
            }
        }
        points.sort_unstable();
        HashRing { points, backends }
    }

    /// Number of backends on the ring.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The backend owning `key`: the first ring point clockwise from the
    /// key's hash.
    pub fn route(&self, key: &str) -> Option<usize> {
        self.route_chain(key).next()
    }

    /// All backends in fallback order for `key`: the owner first, then
    /// each *distinct* backend encountered walking clockwise. Retry logic
    /// walks this chain, so a dead owner's keys spill to its ring
    /// successor and nowhere else.
    pub fn route_chain(&self, key: &str) -> impl Iterator<Item = usize> + '_ {
        let start = match self.points.binary_search(&(hash_key(key), usize::MAX)) {
            Ok(i) | Err(i) => i,
        };
        let mut seen = vec![false; self.backends];
        self.points
            .iter()
            .cycle()
            .skip(start)
            .take(self.points.len())
            .filter_map(move |&(_, backend)| {
                if seen[backend] {
                    None
                } else {
                    seen[backend] = true;
                    Some(backend)
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn keys(count: usize) -> Vec<String> {
        // The routing keys the router actually uses: function-scoped.
        (0..count).map(|i| format!("func:{i}")).collect()
    }

    fn ownership(ring: &HashRing, keys: &[String]) -> Vec<usize> {
        keys.iter()
            .map(|k| ring.route(k).expect("non-empty ring"))
            .collect()
    }

    #[test]
    fn route_is_deterministic_and_total() {
        let ring = HashRing::new(3, 0);
        let again = HashRing::new(3, 0);
        for key in keys(500) {
            let owner = ring.route(&key).unwrap();
            assert!(owner < 3);
            assert_eq!(owner, again.route(&key).unwrap());
        }
        assert_eq!(HashRing::new(0, 0).route("func:0"), None);
    }

    #[test]
    fn chain_visits_every_backend_once() {
        let ring = HashRing::new(5, 16);
        for key in keys(50) {
            let chain: Vec<usize> = ring.route_chain(&key).collect();
            let mut sorted = chain.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "chain {chain:?} misses backends");
            assert_eq!(chain[0], ring.route(&key).unwrap());
        }
    }

    proptest! {
        #[test]
        fn key_distribution_is_balanced(
            backends in 2usize..9,
            key_salt in 0u64..1_000_000,
        ) {
            let ring = HashRing::new(backends, 0);
            let keys: Vec<String> =
                (0..4000).map(|i| format!("func:{}", i as u64 + key_salt)).collect();
            let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
            for key in &keys {
                *counts.entry(ring.route(key).unwrap()).or_default() += 1;
            }
            let ideal = keys.len() as f64 / backends as f64;
            for backend in 0..backends {
                let got = *counts.get(&backend).unwrap_or(&0) as f64;
                // Every backend owns between a third and triple its fair
                // share — loose enough for hash noise, tight enough to
                // catch a lumpy or degenerate ring.
                prop_assert!(
                    got > ideal / 3.0 && got < ideal * 3.0,
                    "backend {} owns {} of {} keys (ideal {:.0})",
                    backend, got, keys.len(), ideal
                );
            }
        }

        #[test]
        fn adding_a_backend_moves_a_bounded_slice_and_only_onto_it(
            backends in 2usize..9,
            key_salt in 0u64..1_000_000,
        ) {
            let before = HashRing::new(backends, 0);
            let after = HashRing::new(backends + 1, 0);
            let keys: Vec<String> =
                (0..4000).map(|i| format!("func:{}", i as u64 + key_salt)).collect();
            let old = ownership(&before, &keys);
            let new = ownership(&after, &keys);
            let mut moved = 0usize;
            for (i, key) in keys.iter().enumerate() {
                if old[i] != new[i] {
                    moved += 1;
                    // Every common backend keeps its ring points, so a key
                    // can only have moved to the newcomer.
                    prop_assert!(
                        new[i] == backends,
                        "{key} moved {} -> {} instead of onto new backend {}",
                        old[i], new[i], backends
                    );
                }
            }
            // The newcomer takes about 1/(n+1) of the keys; allow 2.5x for
            // hash noise at small n.
            let bound = (keys.len() as f64 * 2.5 / (backends + 1) as f64) as usize;
            prop_assert!(
                moved <= bound,
                "{moved} of {} keys moved on add (bound {bound})",
                keys.len()
            );
        }

        #[test]
        fn removing_a_backend_moves_only_its_own_keys(
            backends in 3usize..9,
            key_salt in 0u64..1_000_000,
        ) {
            // "Remove" the highest-numbered backend: rings are functions of
            // the count, so (n) vs (n-1) is exactly a removal of backend n-1.
            let before = HashRing::new(backends, 0);
            let after = HashRing::new(backends - 1, 0);
            let removed = backends - 1;
            let keys: Vec<String> =
                (0..4000).map(|i| format!("func:{}", i as u64 + key_salt)).collect();
            let old = ownership(&before, &keys);
            let new = ownership(&after, &keys);
            for (i, key) in keys.iter().enumerate() {
                if old[i] != removed {
                    // Keys not owned by the removed backend do not move.
                    prop_assert_eq!(
                        old[i], new[i],
                        "{} moved {} -> {} though backend {} was removed",
                        key, old[i], new[i], removed
                    );
                }
            }
        }
    }
}
