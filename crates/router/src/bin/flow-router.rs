//! The fleet front binary: spawns `N` `flow-server` replicas as child
//! processes (sharing one summary-cache directory), then routes the wire
//! protocol across them.
//!
//! ```text
//! flow-router <source-file> [--addr HOST:PORT] [--backends N] [--server-bin PATH]
//!             [--cache-dir DIR] [--workers N] [--vnodes N]
//!             [--auth-token TOKEN] [--backend-auth-token TOKEN]
//!             [--rate-limit N] [--burst N] [--max-line-bytes N]
//! ```
//!
//! `--addr` defaults to `127.0.0.1:0`; the bound address is printed as
//! `flow-router listening on <addr>` so scripts can scrape it (and each
//! respawn prints `flow-router respawned backend <i> at <addr>`).
//! `--backends` (default 3) sizes the fleet; `--server-bin` locates the
//! `flow-server` binary (default: next to this executable). `--cache-dir`
//! (default: a fresh temp dir) is handed to every replica so respawns
//! warm-start from their siblings' summaries.
//!
//! `--auth-token` (or `FLOW_ROUTER_AUTH_TOKEN`) guards the client-facing
//! edge; `--backend-auth-token` (or `FLOW_SERVER_AUTH_TOKEN`) is what the
//! router presents to replicas — the replicas are launched with the same
//! token required. `--rate-limit`/`--burst`/`--max-line-bytes` bound each
//! client connection, exactly like the same flags on `flow-server`.

use flowistry_router::{FlowRouter, ProcessLauncher, RouterConfig};
use std::io::Write;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: flow-router <source-file> [--addr HOST:PORT] [--backends N] \
         [--server-bin PATH] [--cache-dir DIR] [--workers N] [--vnodes N] \
         [--auth-token TOKEN] [--backend-auth-token TOKEN] [--rate-limit N] [--burst N] \
         [--max-line-bytes N]"
    );
    ExitCode::from(2)
}

/// `flow-server` lives next to `flow-router` in every cargo layout; use
/// that unless `--server-bin` says otherwise.
fn default_server_bin() -> std::path::PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|dir| dir.join("flow-server")))
        .unwrap_or_else(|| std::path::PathBuf::from("flow-server"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut source_path: Option<String> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut backends = 3usize;
    let mut server_bin: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut workers = 0usize;
    let mut vnodes = 0usize;
    let mut auth_token = std::env::var("FLOW_ROUTER_AUTH_TOKEN").ok();
    let mut backend_auth_token = std::env::var("FLOW_SERVER_AUTH_TOKEN").ok();
    let mut rate_limit = 0f64;
    let mut burst = 0u32;
    let mut max_line_bytes = 0usize;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut flag_value = |name: &str| -> Option<String> {
            let v = iter.next();
            if v.is_none() {
                eprintln!("flow-router: {name} needs a value");
            }
            v.cloned()
        };
        match arg.as_str() {
            "--addr" => match flag_value("--addr") {
                Some(v) => addr = v,
                None => return usage(),
            },
            "--backends" => match flag_value("--backends").and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => backends = v,
                _ => return usage(),
            },
            "--server-bin" => match flag_value("--server-bin") {
                Some(v) => server_bin = Some(v),
                None => return usage(),
            },
            "--cache-dir" => match flag_value("--cache-dir") {
                Some(v) => cache_dir = Some(v),
                None => return usage(),
            },
            "--workers" => match flag_value("--workers").and_then(|v| v.parse().ok()) {
                Some(v) => workers = v,
                None => return usage(),
            },
            "--vnodes" => match flag_value("--vnodes").and_then(|v| v.parse().ok()) {
                Some(v) => vnodes = v,
                None => return usage(),
            },
            "--auth-token" => match flag_value("--auth-token") {
                Some(v) => auth_token = Some(v),
                None => return usage(),
            },
            "--backend-auth-token" => match flag_value("--backend-auth-token") {
                Some(v) => backend_auth_token = Some(v),
                None => return usage(),
            },
            "--rate-limit" => match flag_value("--rate-limit").and_then(|v| v.parse().ok()) {
                Some(v) => rate_limit = v,
                None => return usage(),
            },
            "--burst" => match flag_value("--burst").and_then(|v| v.parse().ok()) {
                Some(v) => burst = v,
                None => return usage(),
            },
            "--max-line-bytes" => {
                match flag_value("--max-line-bytes").and_then(|v| v.parse().ok()) {
                    Some(v) => max_line_bytes = v,
                    None => return usage(),
                }
            }
            other if source_path.is_none() && !other.starts_with('-') => {
                source_path = Some(other.to_string());
            }
            _ => return usage(),
        }
    }
    let Some(source_path) = source_path else {
        return usage();
    };
    if std::fs::metadata(&source_path).is_err() {
        flowistry_obs::error!("cannot read {source_path}");
        return ExitCode::FAILURE;
    }

    let server_bin = server_bin.map_or_else(default_server_bin, std::path::PathBuf::from);
    let cache_dir = match cache_dir {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let dir =
                std::env::temp_dir().join(format!("flow-router-cache-{}", std::process::id()));
            if let Err(e) = std::fs::create_dir_all(&dir) {
                flowistry_obs::error!("cannot create cache dir {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            dir
        }
    };

    let mut backend_args = vec![
        "--cache-dir".to_string(),
        cache_dir.display().to_string(),
        "--workers".to_string(),
        workers.to_string(),
    ];
    if let Some(token) = &backend_auth_token {
        backend_args.push("--auth-token".to_string());
        backend_args.push(token.clone());
    }
    let launchers: Vec<Box<dyn flowistry_router::BackendLauncher>> = (0..backends)
        .map(|_| {
            Box::new(ProcessLauncher {
                binary: server_bin.clone(),
                source: std::path::PathBuf::from(&source_path),
                args: backend_args.clone(),
            }) as Box<dyn flowistry_router::BackendLauncher>
        })
        .collect();

    let mut config = RouterConfig::default().with_rate_limit(rate_limit, burst);
    config.vnodes = vnodes;
    config.max_line_bytes = max_line_bytes;
    config.auth_token = auth_token;
    config.backend_auth_token = backend_auth_token;

    let router = match FlowRouter::start(launchers, addr.as_str(), config) {
        Ok(r) => r,
        Err(e) => {
            flowistry_obs::error!("cannot start fleet on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for i in 0..router.backend_count() {
        if let Some(backend_addr) = router.backend_addr(i) {
            flowistry_obs::info!("backend {i} listening on {backend_addr}");
        }
    }

    // Stays on stdout (not the logger): scripts scrape this line for the
    // bound port, whatever FLOWISTRY_LOG is set to.
    println!("flow-router listening on {}", router.local_addr());
    let _ = std::io::stdout().flush();
    router.wait();
    flowistry_obs::info!("flow-router shut down");
    ExitCode::SUCCESS
}
