//! The router's edge budgets, exercised against a live single-replica
//! fleet: wrong or missing auth, request-rate spikes, oversize request
//! lines, and oversize update bodies all get structured `error` envelopes
//! — and none of them destabilize the connection, the router, or the
//! backend behind it.

use flowistry_engine::{QueryRequest, QueryResponse};
use flowistry_lang::types::FuncId;
use flowistry_obs::Registry;
use flowistry_router::{BackendLauncher, FlowRouter, InProcessLauncher, RouterConfig};
use flowistry_server::{ClientConfig, FlowClient};
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

const FRONT_TOKEN: &str = "front-secret";
const BACKEND_TOKEN: &str = "backend-secret";
const SOURCE: &str = "fn f(p: &mut i32, x: i32) -> i32 { *p = x; return x; }";

fn fleet(config: RouterConfig) -> FlowRouter {
    let launchers: Vec<Box<dyn BackendLauncher>> = vec![Box::new(InProcessLauncher {
        source: SOURCE.to_string(),
        workers: 1,
        cache_dir: None,
        auth_token: Some(BACKEND_TOKEN.to_string()),
    })];
    FlowRouter::start(
        launchers,
        "127.0.0.1:0",
        config
            .with_backend_auth_token(BACKEND_TOKEN)
            // This box may resolve the default to 1; the tests below hold
            // several connections open at once.
            .with_max_connections(8),
    )
    .expect("start single-replica fleet")
}

fn expect_error(client: &mut FlowClient, fragment: &str) {
    let envelope = client
        .query(&QueryRequest::Stats)
        .expect("query round-trip");
    match &envelope.response {
        QueryResponse::Error(msg) => {
            assert!(msg.contains(fragment), "error {msg:?} lacks {fragment:?}")
        }
        other => panic!("expected an error mentioning {fragment:?}, got {other:?}"),
    }
}

#[test]
fn auth_gate_rejects_until_token_accepted() {
    let router = fleet(RouterConfig::default().with_auth_token(FRONT_TOKEN));
    let addr = router.local_addr();

    let mut client = FlowClient::connect(addr).expect("connect");
    // Pre-auth: every command is refused with a structured error.
    expect_error(&mut client, "authentication required");
    // A wrong token is refused in kind.
    let denied = client
        .auth("not-the-token")
        .expect_err("wrong token accepted");
    assert_eq!(denied.kind(), std::io::ErrorKind::PermissionDenied);
    // The connection survives the refusals; the right token unlocks it.
    client.auth(FRONT_TOKEN).expect("correct token");
    let (_, stats) = client.stats().expect("authed query");
    assert_eq!(stats.epoch, 0);

    let scrape = router.metrics_registry().render_prometheus();
    assert!(scrape.contains("flow_router_auth_failures_total 2"));
}

#[test]
fn rate_budget_rejects_spikes_with_structured_errors() {
    // A glacial refill with a burst of 4: the auth preamble and three
    // queries pass, then the budget is simply gone for the test's
    // lifetime.
    let router = fleet(
        RouterConfig::default()
            .with_auth_token(FRONT_TOKEN)
            .with_rate_limit(0.001, 4),
    );
    let addr = router.local_addr();

    let mut client = FlowClient::connect(addr).expect("connect");
    client.auth(FRONT_TOKEN).expect("auth spends one token");
    for _ in 0..3 {
        let (_, stats) = client.stats().expect("within burst");
        assert_eq!(stats.epoch, 0);
    }
    expect_error(&mut client, "rate limit exceeded");

    // The budget is per connection: a fresh client starts with a full
    // burst, so one noisy neighbor cannot starve the fleet.
    let mut fresh = FlowClient::connect(addr).expect("second connect");
    fresh.auth(FRONT_TOKEN).expect("fresh auth");
    fresh.stats().expect("fresh connection has its own budget");
}

#[test]
fn oversize_lines_are_drained_and_answered() {
    let router = fleet(
        RouterConfig::default()
            .with_auth_token(FRONT_TOKEN)
            .with_max_line_bytes(256),
    );
    let addr = router.local_addr();

    // Raw wire: a 4KiB garbage line, refused before auth is even
    // consulted, then the same connection authenticates and works.
    let stream = std::net::TcpStream::connect(addr).expect("raw connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(&[b'x'; 4096])
        .and_then(|()| writer.write_all(b"\n"))
        .expect("oversize write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("oversize reply");
    assert!(
        line.starts_with("error ") && line.contains("request%20line%20exceeds"),
        "oversize line answered {line:?}"
    );
    writeln!(
        writer,
        "{}",
        flowistry_server::codec::encode_auth(FRONT_TOKEN)
    )
    .expect("auth write");
    line.clear();
    reader.read_line(&mut line).expect("auth reply");
    assert_eq!(line.trim_end(), flowistry_server::codec::AUTHED_LINE);
    writeln!(writer, "stats").expect("stats write");
    line.clear();
    reader.read_line(&mut line).expect("stats reply");
    let envelope = flowistry_server::codec::decode_envelope(line.trim_end()).expect("decode");
    assert!(
        matches!(envelope.response, QueryResponse::Stats(_)),
        "connection died after oversize line: {:?}",
        envelope.response
    );
}

#[test]
fn update_budget_is_configurable() {
    let config = RouterConfig {
        // Between the 46-byte replacement below and the 55-byte seed.
        max_update_bytes: 50,
        ..RouterConfig::default()
    };
    let router = fleet(config);
    let addr = router.local_addr();

    let mut client = FlowClient::connect(addr).expect("connect");
    let rejected = client.update(SOURCE).expect_err("oversize update accepted");
    assert!(
        rejected.to_string().contains("exceeds"),
        "unhelpful update rejection: {rejected}"
    );
    // Nothing was broadcast; the fleet still serves epoch 0 and accepts a
    // small update on the same connection.
    let (_, stats) = client.stats().expect("stats after rejection");
    assert_eq!(stats.epoch, 0);
    let epoch = client
        .update("fn f(p: &mut i32, x: i32) -> i32 { return x; }")
        .expect("small update");
    assert_eq!(epoch, 1);
}

#[test]
fn metrics_verb_answers_from_the_router_registry() {
    let registry = Arc::new(Registry::new());
    let router = fleet(RouterConfig::default().with_registry(registry.clone()));
    let addr = router.local_addr();

    let mut client = FlowClient::connect(addr).expect("connect");
    client.stats().expect("one routed request");
    let scrape = client.metrics().expect("wire metrics");
    // The fleet's series, not a backend's: routing counters present,
    // engine counters absent.
    assert!(scrape.contains("flow_router_requests_total"));
    assert!(scrape.contains("flow_router_backend_requests_total{backend=\"0\"}"));
    assert!(!scrape.contains("flow_engine_functions_analyzed_total"));
    assert_eq!(scrape, registry.render_prometheus());
}

#[test]
fn lint_verb_routes_with_function_pinning_and_survives_malformed_lines() {
    let registry = Arc::new(Registry::new());
    let router = fleet(RouterConfig::default().with_registry(registry.clone()));
    let addr = router.local_addr();

    let mut client = FlowClient::connect(addr).expect("connect");
    // A valid lint query routes to the function's pinned backend and
    // answers findings (`f` writes `*p` and returns `x`, so it is clean).
    let envelope = client
        .query(&QueryRequest::Lint(FuncId(0)))
        .expect("lint round-trip");
    match &envelope.response {
        QueryResponse::Lint(findings) => assert!(findings.is_empty(), "{findings:?}"),
        other => panic!("expected lint findings, got {other:?}"),
    }
    // An unknown function id is a structured error from the backend, not a
    // dropped connection.
    let envelope = client
        .query(&QueryRequest::Lint(FuncId(42)))
        .expect("out-of-range lint round-trip");
    match &envelope.response {
        QueryResponse::Error(msg) => {
            assert!(msg.contains("unknown function id 42"), "{msg}")
        }
        other => panic!("expected an error, got {other:?}"),
    }

    // Raw wire: malformed `lint` lines are refused with structured errors
    // and the connection keeps serving.
    let stream = std::net::TcpStream::connect(addr).expect("raw connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut line = String::new();
    for bad in ["lint", "lint nine", "lint 0 extra"] {
        writeln!(writer, "{bad}").expect("malformed write");
        line.clear();
        reader.read_line(&mut line).expect("malformed reply");
        assert!(
            line.starts_with("error "),
            "{bad:?} answered {line:?}, want a structured error"
        );
    }
    writeln!(writer, "lint 0").expect("valid write");
    line.clear();
    reader.read_line(&mut line).expect("valid reply");
    let envelope = flowistry_server::codec::decode_envelope(line.trim_end()).expect("decode");
    assert!(
        matches!(envelope.response, QueryResponse::Lint(_)),
        "connection died after malformed lint lines: {:?}",
        envelope.response
    );

    // The router's per-kind routing latency series records the lint verb;
    // both well-formed queries went to the single replica's shard.
    let scrape = registry.render_prometheus();
    assert!(
        scrape.contains("flow_router_route_seconds_count{kind=\"lint\"}"),
        "no lint routing series:\n{scrape}"
    );
}

#[test]
fn open_front_acks_auth_unconditionally() {
    // No token configured: the preamble is still acknowledged, so clients
    // can send it unconditionally.
    let router = fleet(RouterConfig::default());
    let mut client = FlowClient::connect_retry(
        router.local_addr(),
        &ClientConfig::default().with_read_timeout(Duration::from_secs(30)),
        8,
    )
    .expect("connect");
    client.auth("whatever").expect("open front acks any token");
    client.stats().expect("routed query");
}
