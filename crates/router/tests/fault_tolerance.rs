//! Fault-tolerance machinery of the fleet front: compacted update
//! history, catch-up of respawned replicas, the per-backend circuit
//! breaker, and deadline budgets that bound failover.
//!
//! Some tests drive the process-global failpoint registry
//! (`flowistry-fault`); every test takes one lock so no concurrently
//! running test in this binary sees another's injected faults.

use flowistry_engine::{QueryRequest, QueryResponse};
use flowistry_fault::sites;
use flowistry_obs::Registry;
use flowistry_router::{BackendLauncher, FlowRouter, InProcessLauncher, RouterConfig};
use flowistry_server::FlowClient;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    FAILPOINT_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

const TOKEN: &str = "fleet-secret";

fn version(v: usize, pad: usize) -> String {
    let mut src = format!("fn f(p: &mut i32, x: i32) -> i32 {{ *p = x + {v}; return x; }}\n");
    for i in 0..pad {
        src.push_str(&format!("fn pad{i}(x: i32) -> i32 {{ return x + {i}; }}\n"));
    }
    src
}

fn fleet(backends: usize, config: RouterConfig) -> (FlowRouter, Arc<Registry>) {
    let registry = Arc::new(Registry::new());
    let launchers: Vec<Box<dyn BackendLauncher>> = (0..backends)
        .map(|_| {
            Box::new(InProcessLauncher {
                source: version(0, 0),
                workers: 1,
                cache_dir: None,
                auth_token: Some(TOKEN.to_string()),
            }) as Box<dyn BackendLauncher>
        })
        .collect();
    let router = FlowRouter::start(
        launchers,
        "127.0.0.1:0",
        config
            .with_backend_auth_token(TOKEN)
            .with_max_connections(8)
            .with_registry(registry.clone()),
    )
    .expect("start fleet");
    (router, registry)
}

fn gauge(registry: &Registry, series: &str) -> f64 {
    registry
        .render_prometheus()
        .lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| l.strip_prefix(series)?.strip_prefix(' ')?.parse().ok())
        .unwrap_or_else(|| panic!("series {series} missing from scrape"))
}

/// The router retains only the latest update source: after N updates the
/// `flow_router_history_bytes` gauge reports the size of update N alone,
/// not the sum of every version ever broadcast.
#[test]
fn update_history_is_compacted_to_the_latest_source() {
    let _guard = lock();
    let (router, registry) = fleet(2, RouterConfig::default());
    let mut client = FlowClient::connect(router.local_addr()).expect("connect");

    // Three updates with very different sizes; the padded middle one
    // would dominate an accumulating history.
    let sources = [version(1, 40), version(2, 200), version(3, 5)];
    for (i, source) in sources.iter().enumerate() {
        let epoch = client.update(source).expect("update");
        assert_eq!(epoch, i as u64 + 1);
    }
    let retained = gauge(&registry, "flow_router_history_bytes");
    assert_eq!(
        retained as usize,
        sources[2].len(),
        "history must hold the latest source only"
    );
    assert!(
        (retained as usize) < sources.iter().map(String::len).sum::<usize>(),
        "history grew like an accumulating log"
    );

    // And the fleet serves the newest version.
    let envelope = client.query(&QueryRequest::Stats).expect("stats");
    assert_eq!(envelope.epoch, 3);
}

/// A replica killed after updates is caught up by the supervisor from the
/// compacted history: one pinned update fast-forwards it to the fleet
/// epoch, and every backend serves that epoch afterwards.
#[test]
fn respawned_backend_catches_up_from_the_compacted_history() {
    let _guard = lock();
    let (router, registry) = fleet(
        2,
        RouterConfig::default()
            .with_health_interval(Duration::from_millis(50))
            .with_failure_threshold(2),
    );
    let mut client = FlowClient::connect(router.local_addr()).expect("connect");
    for v in 1..=2 {
        let epoch = client.update(&version(v, 10)).expect("update");
        assert_eq!(epoch, v as u64);
    }

    router.kill_backend(0);
    let deadline = Instant::now() + Duration::from_secs(30);
    while gauge(
        &registry,
        "flow_router_backend_respawns_total{backend=\"0\"}",
    ) < 1.0
    {
        assert!(Instant::now() < deadline, "backend 0 was never respawned");
        std::thread::sleep(Duration::from_millis(25));
    }
    while !router.backend_healthy(0) {
        assert!(Instant::now() < deadline, "backend 0 never turned healthy");
        std::thread::sleep(Duration::from_millis(25));
    }

    // Stats queries spread round-robin, so a handful hits both replicas;
    // every response must come from the caught-up epoch.
    for _ in 0..8 {
        let envelope = client.query(&QueryRequest::Stats).expect("stats");
        assert_eq!(envelope.epoch, 2, "a replica still serves a stale epoch");
    }
}

/// Consecutive injected send failures open the backend's circuit (requests
/// fail fast, state gauge reads 1); after the cooldown one half-open probe
/// closes it again and traffic resumes.
#[test]
fn circuit_breaker_opens_on_send_failures_and_recloses_after_cooldown() {
    let _guard = lock();
    let (router, registry) = fleet(
        1,
        RouterConfig::default()
            // Keep the supervisor out of the way: the breaker, not a
            // respawn, must be what restores service here.
            .with_health_interval(Duration::from_secs(120)),
    );
    let mut client = FlowClient::connect(router.local_addr()).expect("connect");
    let envelope = client.query(&QueryRequest::Stats).expect("warm-up");
    assert!(!matches!(envelope.response, QueryResponse::Error(_)));

    flowistry_fault::configure(&format!("{}=err:1.0:7", sites::BACKEND_SEND)).unwrap();
    // Each query's send fails; after the threshold the breaker opens.
    for _ in 0..6 {
        let envelope = client.query(&QueryRequest::Stats).expect("round-trip");
        assert!(
            matches!(envelope.response, QueryResponse::Error(_)),
            "sends are failing, responses must be structured errors"
        );
    }
    assert_eq!(router.backend_breaker_state(0), 1, "breaker must be open");
    assert_eq!(gauge(&registry, "flow_breaker_state{backend=\"0\"}"), 1.0);
    flowistry_fault::clear();

    // While open (cooldown default 500ms), requests fail fast without
    // touching the backend.
    let envelope = client.query(&QueryRequest::Stats).expect("fast-fail");
    assert!(matches!(envelope.response, QueryResponse::Error(_)));

    // After the cooldown, the half-open probe goes through, succeeds, and
    // recloses the breaker.
    std::thread::sleep(Duration::from_millis(600));
    let envelope = client.query(&QueryRequest::Stats).expect("probe");
    assert!(
        !matches!(envelope.response, QueryResponse::Error(_)),
        "half-open probe should have served: {:?}",
        envelope.response
    );
    assert_eq!(router.backend_breaker_state(0), 0, "breaker must reclose");
}

/// A request with a `deadline=` budget never waits past it: with every
/// job start delayed beyond the budget, the router answers `error
/// deadline exceeded` within the budget (plus scheduling slack), and the
/// deadline counter ticks.
#[test]
fn deadline_budget_bounds_the_wait_and_sheds_structured_errors() {
    let _guard = lock();
    let (router, registry) = fleet(1, RouterConfig::default());
    let mut client = FlowClient::connect(router.local_addr()).expect("connect");

    flowistry_fault::configure(&format!("{}=delay(200):1.0", sites::SCHEDULER_JOB_START)).unwrap();
    let started = Instant::now();
    client
        .submit_with(&QueryRequest::Stats, None, Some(20))
        .expect("submit");
    let envelope = client.recv().expect("recv");
    let waited = started.elapsed();
    flowistry_fault::clear();

    match &envelope.response {
        QueryResponse::Error(msg) => {
            assert!(
                msg.contains("deadline exceeded"),
                "unexpected error {msg:?}"
            )
        }
        other => panic!("expected a deadline error, got {other:?}"),
    }
    assert!(
        waited < Duration::from_millis(150),
        "the 20ms budget leaked into a {waited:?} wait"
    );
    assert!(gauge(&registry, "flow_deadline_exceeded_total") >= 1.0);

    // The delayed response drains harmlessly; the connection still works.
    std::thread::sleep(Duration::from_millis(250));
    let envelope = client.query(&QueryRequest::Stats).expect("after");
    assert!(!matches!(envelope.response, QueryResponse::Error(_)));
}
