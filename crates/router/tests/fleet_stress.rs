//! End-to-end loopback stress for the fleet front, extending the server's
//! `loopback_stress` gauntlet across a routed 3-replica fleet: 8
//! concurrent TCP clients issue the mixed protocol (blocking round-trips
//! and pipelined bursts) *through the router* while an updater pushes
//! edited program versions through the wire `update` broadcast — and a
//! chaos thread kills one backend mid-run. The supervisor must notice,
//! respawn it (warm-started from the shared summary-cache dir), and replay
//! the update history into it before routing to it again.
//!
//! Every envelope that comes back is decoded and checked **bit-for-bit**
//! against a direct (engine-free) analysis of the program version matching
//! its epoch — regardless of which replica answered. A routing mix-up, an
//! epoch skew between replicas, or a half-replayed respawn all fail the
//! comparison. Runs at 1, 2, and 8 backend workers.
//!
//! The edge budgets ride along: every client authenticates first, an
//! unauthenticated connection mid-run gets structured errors without
//! disturbing anyone, and the router's own metrics must record the chaos
//! (respawns, quorum acks) when scraped over the wire.

use flowistry_core::{analyze, AnalysisParams, Condition, FunctionSummary};
use flowistry_engine::{QueryRequest, QueryResponse};
use flowistry_ifc::{IfcChecker, IfcPolicy, IfcReport};
use flowistry_lang::types::FuncId;
use flowistry_lang::{CallGraph, CompiledProgram};
use flowistry_lint::{LintFinding, Linter};
use flowistry_obs::Registry;
use flowistry_router::{BackendLauncher, FlowRouter, InProcessLauncher, RouterConfig};
use flowistry_server::{ClientConfig, FlowClient};
use flowistry_slicer::{Slice, Slicer};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const FRONT_TOKEN: &str = "fleet-front-token";
const BACKEND_TOKEN: &str = "fleet-backend-token";

/// The value of the series named exactly `series` in Prometheus text.
fn sample(text: &str, series: &str) -> f64 {
    let value = text
        .lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            l.strip_prefix(series)
                .and_then(|rest| rest.strip_prefix(' '))
        })
        .unwrap_or_else(|| panic!("series {series} missing from scrape"));
    value.parse().unwrap_or_else(|e| panic!("{series}: {e}"))
}

/// Same layered workload as the server stress tests: `modules` chains of
/// `depth` functions; edits below touch bodies only, so `FuncId`s are
/// stable across every version.
fn layered_source(modules: usize, depth: usize) -> String {
    let mut src = String::new();
    for m in 0..modules {
        for l in 0..depth {
            if l == 0 {
                let _ = writeln!(
                    src,
                    "fn m{m}_l0(p: &mut i32, v: i32) -> i32 {{
                         if v > 0 {{ *p = *p + v; }} else {{ *p = v; }}
                         let a = v * 2;
                         let b = a + *p;
                         return b;
                     }}"
                );
            } else {
                let prev = l - 1;
                let _ = writeln!(
                    src,
                    "fn m{m}_l{l}(p: &mut i32, v: i32) -> i32 {{
                         let r1 = m{m}_l{prev}(p, v + 1);
                         let r2 = m{m}_l{prev}(p, r1);
                         let mut acc = r1 + r2;
                         if acc > 10 {{ acc = acc - v; }}
                         return acc;
                     }}"
                );
            }
        }
    }
    src
}

/// Everything a response can be checked against, computed directly (no
/// engine, no fleet) for one program version.
struct Expected {
    results: Vec<flowistry_core::InfoFlowResults>,
    summaries: Vec<FunctionSummary>,
    slices: Vec<Option<Slice>>,
    ifc: Vec<IfcReport>,
    lints: Vec<Vec<LintFinding>>,
}

fn expected_for(program: &Arc<CompiledProgram>, params: &AnalysisParams) -> Expected {
    let n = program.bodies.len();
    let results: Vec<_> = (0..n)
        .map(|i| analyze(program, FuncId(i as u32), params))
        .collect();
    let summaries: Vec<_> = (0..n)
        .map(|i| {
            FunctionSummary::from_exit_state(
                program.body(FuncId(i as u32)),
                results[i].exit_theta(),
            )
        })
        .collect();
    let slices: Vec<_> = (0..n)
        .map(|i| Slicer::new(program, FuncId(i as u32), params.clone()).backward_slice_of_var("v"))
        .collect();
    let ifc = IfcChecker::new(program, IfcPolicy::from_conventions(program))
        .with_params(params.clone())
        .check_program();
    let call_graph = CallGraph::extract(program);
    let linter = Linter::with_call_graph(program, &call_graph);
    let lints: Vec<_> = (0..n)
        .map(|i| linter.lint_function(FuncId(i as u32), &summaries[i], &results[i]))
        .collect();
    Expected {
        results,
        summaries,
        slices,
        ifc,
        lints,
    }
}

/// Whether a response is the router's synthesized loss error — the one
/// answer a client may legitimately see during the chaos window, and the
/// signal to simply re-issue the request.
fn is_router_loss(response: &QueryResponse) -> bool {
    matches!(response, QueryResponse::Error(msg) if msg.starts_with("router:"))
}

/// Connects through the router front and completes the auth preamble.
fn connect_authed(addr: std::net::SocketAddr) -> FlowClient {
    let mut client = FlowClient::connect_retry(addr, &ClientConfig::default(), 8)
        .expect("connect through router");
    client.auth(FRONT_TOKEN).expect("front auth");
    client
}

/// The scenario at one backend worker count: 8 clients race a wire
/// updater through a 3-replica fleet while one replica is killed and
/// respawned; every envelope is checked against the direct analysis of
/// its own epoch.
fn hammer_through_router(workers: usize) {
    let base = layered_source(3, 3);
    let params = AnalysisParams::for_condition(Condition::WHOLE_PROGRAM);
    const VERSIONS: usize = 4;

    // Version k prepends k padding statements to module 0's leaf body: the
    // function set is unchanged (FuncIds stable), but shifted statement
    // locations make each version's results pairwise distinct — an epoch
    // mix-up between replicas cannot go unnoticed.
    let sources: Vec<String> = (0..VERSIONS)
        .map(|k| {
            let pad: String = (0..k).map(|j| format!("let zpad{j} = v + 1; ")).collect();
            base.replacen("let a = v * 2;", &format!("{pad}let a = v * 2;"), 1)
        })
        .collect();
    let programs: Vec<Arc<CompiledProgram>> = sources
        .iter()
        .map(|src| Arc::new(flowistry_lang::compile(src).expect("edited version compiles")))
        .collect();
    let expected: Vec<Expected> = programs.iter().map(|p| expected_for(p, &params)).collect();
    let num_funcs = programs[0].bodies.len();
    for k in 1..VERSIONS {
        assert_ne!(
            expected[k - 1].results[0],
            expected[k].results[0],
            "versions {} and {k} must be distinguishable",
            k - 1
        );
    }
    let policy = IfcPolicy::from_conventions(&programs[0]);

    // One shared summary-cache dir across the fleet: the respawned replica
    // warm-starts from its siblings' work.
    let cache_dir =
        std::env::temp_dir().join(format!("flow-fleet-cache-{}-{workers}", std::process::id()));
    std::fs::create_dir_all(&cache_dir).expect("create fleet cache dir");

    let launchers: Vec<Box<dyn BackendLauncher>> = (0..3)
        .map(|_| {
            Box::new(InProcessLauncher {
                source: sources[0].clone(),
                workers,
                cache_dir: Some(cache_dir.clone()),
                auth_token: Some(BACKEND_TOKEN.to_string()),
            }) as Box<dyn BackendLauncher>
        })
        .collect();
    let registry = Arc::new(Registry::new());
    let config = RouterConfig::default()
        .with_auth_token(FRONT_TOKEN)
        .with_backend_auth_token(BACKEND_TOKEN)
        // 8 query clients + the updater + the final checker + the unauthed
        // probe must never queue behind each other in the accept backlog.
        .with_max_connections(16)
        // An aggressive supervisor, so the kill below is detected and
        // repaired within the test's lifetime.
        .with_health_interval(Duration::from_millis(40))
        .with_failure_threshold(2)
        .with_registry(registry.clone());
    let router = FlowRouter::start(launchers, "127.0.0.1:0", config).expect("start loopback fleet");
    let addr = router.local_addr();

    let check = |epoch: u64, request: &QueryRequest, response: &QueryResponse| {
        assert!(
            (epoch as usize) < VERSIONS,
            "impossible epoch {epoch} in an envelope"
        );
        let exp = &expected[epoch as usize];
        match (request, response) {
            (QueryRequest::Results(f), QueryResponse::Results(got)) => {
                assert_eq!(
                    **got, exp.results[f.0 as usize],
                    "Results({}) through the router diverged from direct analyze at epoch {epoch}",
                    f.0
                );
            }
            (QueryRequest::Summary(f), QueryResponse::Summary(got)) => {
                assert_eq!(
                    got.as_ref(),
                    Some(&exp.summaries[f.0 as usize]),
                    "Summary({}) through the router diverged at epoch {epoch}",
                    f.0
                );
            }
            (QueryRequest::BackwardSlice { func, .. }, QueryResponse::BackwardSlice(got)) => {
                assert_eq!(
                    got, &exp.slices[func.0 as usize],
                    "BackwardSlice({}) through the router diverged at epoch {epoch}",
                    func.0
                );
            }
            (QueryRequest::CheckIfc(_), QueryResponse::CheckIfc(got)) => {
                assert_eq!(
                    got, &exp.ifc,
                    "CheckIfc through the router diverged at epoch {epoch}"
                );
            }
            (QueryRequest::Lint(f), QueryResponse::Lint(got)) => {
                assert_eq!(
                    got, &exp.lints[f.0 as usize],
                    "Lint({}) through the router diverged at epoch {epoch}",
                    f.0
                );
            }
            (QueryRequest::Stats, QueryResponse::Stats(stats)) => {
                assert_eq!(stats.epoch, epoch);
                assert_eq!(stats.workers, workers);
            }
            (req, QueryResponse::Error(msg)) => {
                panic!("unexpected error for {req:?} at epoch {epoch}: {msg}")
            }
            (req, resp) => panic!("response variant mismatch: {req:?} -> {resp:?}"),
        }
    };

    std::thread::scope(|s| {
        // 8 query clients: even threads do blocking round-trips, odd
        // threads pipeline bursts of 5 requests before reading responses.
        for t in 0..8usize {
            let check = &check;
            let policy = &policy;
            s.spawn(move || {
                let mut client = connect_authed(addr);
                let make_request = |i: usize| {
                    let func = FuncId(((i + t) % num_funcs) as u32);
                    match (i + t) % 6 {
                        0 => QueryRequest::Results(func),
                        1 => QueryRequest::Summary(func),
                        2 => QueryRequest::BackwardSlice {
                            func,
                            var: "v".to_string(),
                        },
                        3 => QueryRequest::CheckIfc(policy.clone()),
                        4 => QueryRequest::Lint(func),
                        _ => QueryRequest::Stats,
                    }
                };
                // A request the chaos window genuinely lost is re-issued;
                // anything else is checked bit-for-bit.
                let settle = |client: &mut FlowClient, request: &QueryRequest, tid: &str| {
                    for _attempt in 0..32 {
                        let envelope = client.query(request).expect("query through router");
                        if is_router_loss(&envelope.response) {
                            continue;
                        }
                        assert_eq!(
                            envelope.trace_id.as_deref(),
                            Some(tid),
                            "trace id not echoed on {request:?}"
                        );
                        check(envelope.epoch, request, &envelope.response);
                        return;
                    }
                    panic!("{request:?} still lost after 32 retries");
                };
                let tid = format!("client-{t}");
                if t % 2 == 0 {
                    for i in 0..30usize {
                        let request = make_request(i);
                        client
                            .submit_traced(&request, Some(&tid))
                            .expect("traced submit");
                        let envelope = client.recv().expect("query round-trip");
                        if is_router_loss(&envelope.response) {
                            settle(&mut client, &request, &tid);
                            continue;
                        }
                        assert_eq!(
                            envelope.trace_id.as_deref(),
                            Some(tid.as_str()),
                            "trace id not echoed on {request:?}"
                        );
                        check(envelope.epoch, &request, &envelope.response);
                    }
                } else {
                    for burst in 0..6usize {
                        let requests: Vec<_> =
                            (0..5).map(|j| make_request(burst * 5 + j)).collect();
                        for request in &requests {
                            client
                                .submit_traced(request, Some(&tid))
                                .expect("pipelined traced submit");
                        }
                        assert_eq!(client.pending(), 5);
                        let mut lost = Vec::new();
                        for request in &requests {
                            let envelope = client.recv().expect("pipelined recv");
                            if is_router_loss(&envelope.response) {
                                lost.push(request.clone());
                                continue;
                            }
                            assert_eq!(
                                envelope.trace_id.as_deref(),
                                Some(tid.as_str()),
                                "trace id not echoed on {request:?}"
                            );
                            check(envelope.epoch, request, &envelope.response);
                        }
                        for request in lost {
                            settle(&mut client, &request, &tid);
                        }
                    }
                }
            });
        }

        // Meanwhile: push every edited version through the wire `update`
        // broadcast, in order. The fleet acks each one at quorum even with
        // a replica down.
        let sources = &sources;
        s.spawn(move || {
            let mut updater = connect_authed(addr);
            for (k, source) in sources.iter().enumerate().skip(1) {
                let epoch = updater.update(source).expect("wire update broadcast");
                assert_eq!(epoch, k as u64, "updates must apply in order");
            }
        });

        // Chaos: kill replica 1 out from under the fleet mid-run. The
        // supervisor must respawn it; routed traffic must not care.
        let router = &router;
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            router.kill_backend(1);
        });

        // An unauthenticated connection mid-run: structured errors only,
        // and nobody else notices.
        s.spawn(move || {
            let mut intruder = FlowClient::connect_retry(addr, &ClientConfig::default(), 8)
                .expect("connect unauthed probe");
            for _ in 0..3 {
                let envelope = intruder
                    .query(&QueryRequest::Stats)
                    .expect("unauthed query");
                match &envelope.response {
                    QueryResponse::Error(msg) => {
                        assert!(
                            msg.contains("authentication required"),
                            "unauthed connection saw: {msg}"
                        )
                    }
                    other => panic!("unauthed connection was served: {other:?}"),
                }
            }
        });
    });

    // The kill must be noticed, the replica respawned, and the update
    // history replayed into it before it serves again.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let respawns = sample(
            &registry.render_prometheus(),
            "flow_router_backend_respawns_total{backend=\"1\"}",
        );
        if respawns >= 1.0 && router.backend_healthy(1) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "backend 1 was never respawned (respawns={respawns}, healthy={})",
            router.backend_healthy(1)
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // All clients done, all updates applied, the fleet repaired: a fresh
    // connection must see the final version bit-for-bit from *every*
    // function's owner — including the respawned replica's shard.
    let mut client = connect_authed(addr);
    for f in 0..num_funcs {
        let request = QueryRequest::Results(FuncId(f as u32));
        let envelope = client.query(&request).expect("final sweep query");
        assert_eq!(
            envelope.epoch,
            (VERSIONS - 1) as u64,
            "function {f}'s owner lags the fleet epoch"
        );
        check(envelope.epoch, &request, &envelope.response);
    }
    let (epoch, stats) = client.stats().expect("final stats");
    assert_eq!(epoch, (VERSIONS - 1) as u64);
    assert_eq!(stats.epoch, (VERSIONS - 1) as u64);

    // The router's own metrics answer the wire `metrics` verb (the fleet
    // registry, not any single backend's), and must record the run.
    let scrape = client.metrics().expect("router metrics scrape");
    assert!(sample(&scrape, "flow_router_requests_total") >= (8 * 30) as f64);
    assert_eq!(sample(&scrape, "flow_router_updates_total"), 3.0);
    assert!(sample(&scrape, "flow_router_backend_respawns_total{backend=\"1\"}") >= 1.0);
    assert_eq!(
        sample(&scrape, "flow_router_backend_respawns_total{backend=\"0\"}"),
        0.0
    );
    assert!(sample(&scrape, "flow_router_auth_failures_total") >= 3.0);
    assert_eq!(
        sample(&scrape, "flow_router_backend_healthy{backend=\"1\"}"),
        1.0
    );
    assert_eq!(sample(&scrape, "flow_router_decode_errors_total"), 0.0);
    // 11 fronts: 8 stress clients, the updater, the unauthed probe, this
    // checker.
    assert_eq!(sample(&scrape, "flow_router_connections_total"), 11.0);

    // Graceful wire shutdown: the router acks with `bye`, tears the fleet
    // down, and `wait()` returns.
    client.shutdown_server().expect("wire shutdown");
    router.wait();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn fleet_stress_one_worker() {
    hammer_through_router(1);
}

#[test]
fn fleet_stress_two_workers() {
    hammer_through_router(2);
}

#[test]
fn fleet_stress_eight_workers() {
    hammer_through_router(8);
}
