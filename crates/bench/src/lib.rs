//! placeholder
