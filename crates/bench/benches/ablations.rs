//! Ablation benchmarks for the design choices called out in DESIGN.md §4:
//! field sensitivity (place granularity) and control-dependence handling,
//! measured as their cost on representative functions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowistry_core::{analyze, AnalysisParams};
use flowistry_lang::compile;

/// Field-heavy workload: many disjoint field writes. Field sensitivity keeps
/// dependency sets small; the benchmark tracks what that precision costs.
const FIELD_HEAVY: &str = "
fn f(a: i32, b: i32, c: i32) -> i32 {
    let mut t = ((a, b), (c, 0));
    t.0.0 = a + 1;
    t.0.1 = b + 2;
    t.1.0 = c + 3;
    t.1.1 = t.0.0 + t.1.0;
    return t.1.1;
}";

/// Branch-heavy workload: every assignment is control-dependent on several
/// switches, exercising the post-dominator/control-dependence machinery.
const BRANCH_HEAVY: &str = "
fn f(a: i32, b: i32, c: i32) -> i32 {
    let mut out = 0;
    if a > 0 { if b > 0 { out = a; } else { out = b; } } else { out = c; }
    if c > 2 { out = out + 1; }
    if b == a { out = out * 2; } else { if a < c { out = out - 1; } }
    return out;
}";

/// Alias-heavy workload: reborrow chains which the loan-set machinery must
/// resolve at every mutation.
const ALIAS_HEAVY: &str = "
fn f(a: i32) -> i32 {
    let mut x = (0, (0, 0));
    let r1 = &mut x;
    let r2 = &mut (*r1).1;
    let r3 = &mut (*r2).0;
    *r3 = a;
    let s1 = &mut x.0;
    *s1 = a + 1;
    return x.0 + x.1.0;
}";

fn bench_ablations(c: &mut Criterion) {
    let cases = [
        ("field_sensitivity", FIELD_HEAVY),
        ("control_deps", BRANCH_HEAVY),
        ("alias_resolution", ALIAS_HEAVY),
    ];
    let mut group = c.benchmark_group("ablations");
    for (name, src) in cases {
        let program = compile(src).expect("ablation program compiles");
        let func = program.func_id("f").expect("f exists");
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, program| {
            b.iter(|| analyze(program, func, &AnalysisParams::default()).iterations())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
