//! Benchmark for experiments E2/E3 (Figures 2 and 3): running the analysis
//! of one corpus crate under each of the four headline conditions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowistry_core::{analyze, AnalysisParams, Condition};
use flowistry_corpus::{generate_crate, paper_profiles, DEFAULT_SEED};

fn bench_conditions(c: &mut Criterion) {
    let profile = paper_profiles().into_iter().next().expect("ten profiles");
    let krate = generate_crate(&profile, DEFAULT_SEED);
    let funcs: Vec<_> = krate.crate_funcs.iter().copied().take(12).collect();

    let mut group = c.benchmark_group("analysis_conditions");
    group.sample_size(10);
    for condition in Condition::headline_four() {
        let params = AnalysisParams {
            condition,
            available_bodies: Some(krate.available_bodies()),
            ..AnalysisParams::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(condition.name()),
            &params,
            |b, params| {
                b.iter(|| {
                    let mut total = 0usize;
                    for &func in &funcs {
                        let results = analyze(&krate.program, func, params);
                        total += results.exit_theta().len();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_conditions);
criterion_main!(benches);
