//! Benchmark for the incremental analysis engine: cold whole-program
//! analysis vs warm-cache re-analysis after a single-function edit, plus
//! sequential vs parallel scheduling of the cold run.
//!
//! The headline check — warm re-analysis after one edit must be at least
//! 5x faster than a cold run — is asserted here, not just printed: the
//! whole point of the engine is that an edit costs the dirty cone, not the
//! program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowistry_core::{AnalysisParams, Condition};
use flowistry_corpus::{generate_crate, paper_profiles, DEFAULT_SEED};
use flowistry_engine::{AnalysisEngine, EngineConfig};
use std::sync::Arc;
use std::time::Instant;

fn params_for(krate: &flowistry_corpus::GeneratedCrate) -> AnalysisParams {
    AnalysisParams {
        condition: Condition::WHOLE_PROGRAM,
        available_bodies: Some(krate.available_bodies()),
        ..AnalysisParams::default()
    }
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    // The rg3d stand-in: the largest corpus crate.
    let profile = paper_profiles().into_iter().nth(7).expect("ten profiles");
    let krate = generate_crate(&profile, DEFAULT_SEED);
    let program = Arc::new(krate.program.clone());
    let params = params_for(&krate);
    let edited_source =
        flowistry_eval::engine_perf::edit_one_helper(&krate.source).expect("helper_0 exists");
    let edited_program =
        Arc::new(flowistry_lang::compile(&edited_source).expect("edited crate compiles"));

    let mut group = c.benchmark_group("engine_incremental");
    group.sample_size(10);

    group.bench_with_input(
        BenchmarkId::from_parameter("cold_analyze_all"),
        &program,
        |b, program| {
            b.iter(|| {
                let mut engine = AnalysisEngine::new(
                    program.clone(),
                    EngineConfig::default().with_params(params.clone()),
                );
                engine.analyze_all().analyzed
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::from_parameter("warm_after_one_edit"),
        &program,
        |b, program| {
            // Prime the cache once; each iteration then swaps between the
            // original and edited program, paying only the dirty cone.
            let mut engine = AnalysisEngine::new(
                program.clone(),
                EngineConfig::default().with_params(params.clone()),
            );
            engine.analyze_all();
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                if flip {
                    engine.update_program(edited_program.clone());
                } else {
                    engine.update_program(program.clone());
                }
                engine.analyze_all().analyzed
            })
        },
    );
    group.finish();

    // The acceptance check, measured directly (not through the harness) so
    // it can assert the ratio. Pinned to one worker thread: the ratio is a
    // property of the cache (dirty cone vs whole program), and dragging
    // thread scheduling into it makes the assertion flaky on noisy,
    // oversubscribed CI runners.
    let mut engine = AnalysisEngine::new(
        program.clone(),
        EngineConfig::default()
            .with_params(params.clone())
            .with_threads(1),
    );
    let start = Instant::now();
    let cold_stats = engine.analyze_all();
    let cold = start.elapsed().as_secs_f64();

    engine.update_program(edited_program);
    let start = Instant::now();
    let warm_stats = engine.analyze_all();
    let warm = start.elapsed().as_secs_f64();

    let speedup = cold / warm.max(1e-9);
    println!(
        "engine_incremental/speedup: cold {:.3} ms ({} analyzed) vs edited {:.3} ms ({} analyzed) => {:.1}x",
        cold * 1e3,
        cold_stats.analyzed,
        warm * 1e3,
        warm_stats.analyzed,
        speedup
    );
    assert!(
        warm_stats.analyzed < cold_stats.analyzed / 5,
        "dirty cone too large: {}/{}",
        warm_stats.analyzed,
        cold_stats.analyzed
    );
    assert!(
        speedup >= 5.0,
        "warm re-analysis after one edit must be at least 5x faster than cold \
         whole-program analysis, got {speedup:.1}x"
    );
}

fn bench_sequential_vs_parallel(c: &mut Criterion) {
    let profile = paper_profiles().into_iter().nth(7).expect("ten profiles");
    let krate = generate_crate(&profile, DEFAULT_SEED);
    let program = Arc::new(krate.program.clone());
    let params = params_for(&krate);

    let mut group = c.benchmark_group("engine_scheduling");
    group.sample_size(10);
    for (name, threads) in [("sequential", 1usize), ("parallel", 0usize)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, program| {
            b.iter(|| {
                let mut engine = AnalysisEngine::new(
                    program.clone(),
                    EngineConfig::default()
                        .with_params(params.clone())
                        .with_threads(threads),
                );
                engine.analyze_all().analyzed
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm, bench_sequential_vs_parallel);
criterion_main!(benches);
