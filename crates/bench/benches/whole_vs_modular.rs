//! Benchmark for the §5.1 slowdown claim: naive whole-program recursion vs
//! the modular analysis on a deep call graph (the paper reports 178× on
//! rg3d's GameEngine::render), plus the memoized-summary ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowistry_core::{analyze, AnalysisParams, Condition};
use flowistry_eval::stress_source;

fn bench_whole_vs_modular(c: &mut Criterion) {
    let program = flowistry_lang::compile(&stress_source(4, 2)).expect("stress program compiles");
    let root = program.func_id("render").expect("render exists");

    let mut group = c.benchmark_group("whole_vs_modular");
    group.sample_size(10);
    let cases = [
        ("modular", AnalysisParams::for_condition(Condition::MODULAR)),
        (
            "whole_program_naive",
            AnalysisParams::for_condition(Condition::WHOLE_PROGRAM),
        ),
        (
            "whole_program_memoized",
            AnalysisParams {
                condition: Condition::WHOLE_PROGRAM,
                memoize_summaries: true,
                ..AnalysisParams::default()
            },
        ),
    ];
    for (name, params) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &params, |b, params| {
            b.iter(|| analyze(&program, root, params).iterations())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_whole_vs_modular);
criterion_main!(benches);
