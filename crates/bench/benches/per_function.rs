//! Benchmark for the §5.1 performance claim: per-function analysis time of
//! the modular analysis (the paper reports ~370 µs per function on its
//! corpus), now measured for both state representations.
//!
//! Beyond the criterion micro-group, this bench is the acceptance gate for
//! the indexed dataflow domain: it analyzes every function of the
//! large-body corpus profile under both [`DomainKind`]s, **asserts the
//! indexed domain is at least 3× faster**, and writes `BENCH_infoflow.json`
//! at the repository root (functions analyzed, total statements, wall
//! seconds and statements/sec per domain) so future PRs can track the
//! performance trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowistry_core::{analyze, AnalysisParams, DomainKind};
use flowistry_corpus::{generate_crate, paper_profiles, DEFAULT_SEED};
use flowistry_eval::json::Json;
use flowistry_lang::compile;
use flowistry_obs::{Registry, Span};
use std::time::Instant;

/// Minimum speedup of the indexed domain over the tree domain on the
/// large-body profile. The measured margin is far larger; the gate is
/// deliberately conservative so noisy CI runners do not flake.
const REQUIRED_SPEEDUP: f64 = 3.0;

fn params_for(domain: DomainKind) -> AnalysisParams {
    AnalysisParams {
        domain,
        ..AnalysisParams::default()
    }
}

fn bench_per_function(c: &mut Criterion) {
    let sources = [
        ("small_scalar", "fn f(x: i32, y: i32) -> i32 { let a = x + y; let b = a * 2; return b; }"),
        (
            "branching",
            "fn f(c: bool, x: i32) -> i32 { let mut out = 0; if c { out = x + 1; } else { out = x - 1; } return out; }",
        ),
        (
            "references",
            "fn push(v: &mut (i32, i32), x: i32) { (*v).0 = x; }
             fn f(x: i32) -> i32 { let mut out = (0, 0); push(&mut out, x); return out.0; }",
        ),
        (
            "loops",
            "fn f(n: i32) -> i32 { let mut acc = 0; let mut i = 0; while i < n { acc = acc + i; i = i + 1; } return acc; }",
        ),
    ];
    let mut group = c.benchmark_group("per_function_modular");
    for (name, src) in sources {
        let program = compile(src).expect("benchmark program compiles");
        let func = flowistry_lang::types::FuncId((program.bodies.len() - 1) as u32);
        for (domain, tag) in [(DomainKind::Indexed, "indexed"), (DomainKind::Tree, "tree")] {
            group.bench_with_input(BenchmarkId::new(tag, name), &program, |b, program| {
                let params = params_for(domain);
                b.iter(|| analyze(program, func, &params).iterations())
            });
        }
    }
    group.finish();
}

/// One timed sweep: analyze every crate function of `krate` under the
/// modular condition on `domain`. Returns (wall seconds, functions,
/// statements analyzed). The per-function results are dropped immediately —
/// the point is the analysis itself, exactly what every layer above (engine
/// scheduler, FlowService, eval sweep) pays per function.
fn timed_sweep(
    krate: &flowistry_corpus::GeneratedCrate,
    domain: DomainKind,
) -> (f64, usize, usize) {
    let params = params_for(domain);
    let mut statements = 0usize;
    let start = Instant::now();
    for &func in &krate.crate_funcs {
        let results = analyze(&krate.program, func, &params);
        assert!(results.iterations() > 0);
        statements += krate.program.body(func).instruction_count();
    }
    (
        start.elapsed().as_secs_f64(),
        krate.crate_funcs.len(),
        statements,
    )
}

/// The acceptance gate, measured directly (not through the harness) so it
/// can assert the ratio and emit the trajectory artifact.
fn speedup_gate(_c: &mut Criterion) {
    // The large-body profile: rav1e's stand-in has the largest function
    // bodies of the corpus (~48 statement-generating steps per driver).
    let profile = paper_profiles()
        .into_iter()
        .find(|p| p.name == "rav1e")
        .expect("rav1e profile exists");
    let krate = generate_crate(&profile, DEFAULT_SEED);

    // Warm-up pass (page in the program, fill allocator pools) — untimed.
    let _ = timed_sweep(&krate, DomainKind::Indexed);

    let (tree_secs, functions, statements) = timed_sweep(&krate, DomainKind::Tree);
    let (indexed_secs, _, _) = timed_sweep(&krate, DomainKind::Indexed);
    let speedup = tree_secs / indexed_secs.max(1e-12);

    let per_sec = |secs: f64| statements as f64 / secs.max(1e-12);
    println!(
        "per_function/speedup ({}): tree {:.1} ms ({:.0} stmts/s) vs indexed {:.1} ms ({:.0} stmts/s) => {:.1}x",
        krate.name,
        tree_secs * 1e3,
        per_sec(tree_secs),
        indexed_secs * 1e3,
        per_sec(indexed_secs),
        speedup
    );

    let domain_obj = |secs: f64| {
        Json::Obj(vec![
            ("wall_seconds".into(), Json::Num(secs)),
            ("statements_per_sec".into(), Json::Num(per_sec(secs))),
        ])
    };
    let report = Json::Obj(vec![
        ("profile".into(), Json::Str(krate.name.clone())),
        ("condition".into(), Json::Str("modular".into())),
        ("functions".into(), Json::Num(functions as f64)),
        ("total_statements".into(), Json::Num(statements as f64)),
        ("tree".into(), domain_obj(tree_secs)),
        ("indexed".into(), domain_obj(indexed_secs)),
        ("speedup".into(), Json::Num(speedup)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_infoflow.json");
    std::fs::write(path, report.pretty() + "\n").expect("write BENCH_infoflow.json");
    println!("per_function/report written to {path}");

    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "indexed domain must be at least {REQUIRED_SPEEDUP}x faster than the tree domain \
         on the large-body profile, got {speedup:.2}x \
         (tree {tree_secs:.3}s vs indexed {indexed_secs:.3}s)"
    );
}

/// Maximum tolerated slowdown of the telemetry-instrumented sweep over
/// the plain sweep. Telemetry sits at per-function granularity (one span
/// plus one histogram observation per summary computation — the fixpoint
/// inner loop is deliberately uninstrumented), so its cost must vanish
/// next to the analysis itself.
const MAX_TELEMETRY_OVERHEAD: f64 = 1.05;

/// Like [`timed_sweep`], but wrapping each per-function analysis in
/// exactly the telemetry the engine's scheduler adds: an RAII span feeding
/// a latency histogram, plus a functions-analyzed counter increment.
fn instrumented_sweep(krate: &flowistry_corpus::GeneratedCrate, registry: &Registry) -> f64 {
    let params = params_for(DomainKind::Indexed);
    let histogram = registry.histogram(
        "bench_summary_compute_seconds",
        "per-function analysis latency (overhead gate)",
    );
    let analyzed = registry.counter(
        "bench_functions_analyzed_total",
        "functions analyzed (overhead gate)",
    );
    let start = Instant::now();
    for &func in &krate.crate_funcs {
        let _span = Span::enter_with("summary_compute", krate.program.body(func).name.as_str())
            .with_histogram(histogram.clone());
        let results = analyze(&krate.program, func, &params);
        assert!(results.iterations() > 0);
        analyzed.inc();
    }
    start.elapsed().as_secs_f64()
}

/// The telemetry overhead gate: on the large-body profile, the
/// instrumented sweep must stay within [`MAX_TELEMETRY_OVERHEAD`] of the
/// plain sweep. Min-of-3, interleaved, so one scheduling hiccup cannot
/// decide either side.
fn telemetry_overhead_gate(_c: &mut Criterion) {
    // Events off, as in a production server without FLOWISTRY_LOG: the
    // gate measures the always-on metrics path (span timing + histogram
    // observation), not stderr formatting.
    flowistry_obs::set_max_level(flowistry_obs::Level::Off);
    let profile = paper_profiles()
        .into_iter()
        .find(|p| p.name == "rav1e")
        .expect("rav1e profile exists");
    let krate = generate_crate(&profile, DEFAULT_SEED);
    let registry = Registry::new();

    // Warm-up, untimed.
    let _ = timed_sweep(&krate, DomainKind::Indexed);

    let (mut plain, mut instrumented) = (f64::MAX, f64::MAX);
    for _ in 0..3 {
        let (secs, _, _) = timed_sweep(&krate, DomainKind::Indexed);
        plain = plain.min(secs);
        instrumented = instrumented.min(instrumented_sweep(&krate, &registry));
    }
    let ratio = instrumented / plain.max(1e-12);
    println!(
        "per_function/telemetry_overhead ({}): plain {:.1} ms vs instrumented {:.1} ms => {:.3}x",
        krate.name,
        plain * 1e3,
        instrumented * 1e3,
        ratio
    );
    assert_eq!(
        registry
            .counter("bench_functions_analyzed_total", "")
            .value() as usize,
        3 * krate.crate_funcs.len(),
        "instrumentation must have recorded every function"
    );
    assert!(
        ratio <= MAX_TELEMETRY_OVERHEAD,
        "per-function telemetry costs {:.1}% (> {:.0}% budget): \
         plain {plain:.4}s vs instrumented {instrumented:.4}s",
        (ratio - 1.0) * 100.0,
        (MAX_TELEMETRY_OVERHEAD - 1.0) * 100.0
    );
}

criterion_group!(
    benches,
    bench_per_function,
    speedup_gate,
    telemetry_overhead_gate
);
criterion_main!(benches);
