//! Benchmark for the §5.1 performance claim: median per-function analysis
//! time of the modular analysis (the paper reports ~370 µs per function on
//! its corpus).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowistry_core::{analyze, AnalysisParams};
use flowistry_lang::compile;

fn bench_per_function(c: &mut Criterion) {
    let sources = [
        ("small_scalar", "fn f(x: i32, y: i32) -> i32 { let a = x + y; let b = a * 2; return b; }"),
        (
            "branching",
            "fn f(c: bool, x: i32) -> i32 { let mut out = 0; if c { out = x + 1; } else { out = x - 1; } return out; }",
        ),
        (
            "references",
            "fn push(v: &mut (i32, i32), x: i32) { (*v).0 = x; }
             fn f(x: i32) -> i32 { let mut out = (0, 0); push(&mut out, x); return out.0; }",
        ),
        (
            "loops",
            "fn f(n: i32) -> i32 { let mut acc = 0; let mut i = 0; while i < n { acc = acc + i; i = i + 1; } return acc; }",
        ),
    ];
    let mut group = c.benchmark_group("per_function_modular");
    for (name, src) in sources {
        let program = compile(src).expect("benchmark program compiles");
        let func = flowistry_lang::types::FuncId((program.bodies.len() - 1) as u32);
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, program| {
            b.iter(|| analyze(program, func, &AnalysisParams::default()).iterations())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_per_function);
criterion_main!(benches);
