//! Benchmark for experiment E1 (Table 1): generating and compiling the
//! synthetic corpus crates — the workload-preparation cost of the
//! evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowistry_corpus::{generate_crate, paper_profiles, DEFAULT_SEED};

fn bench_table1_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_corpus_generation");
    group.sample_size(10);
    for profile in paper_profiles().into_iter().take(3) {
        group.bench_with_input(
            BenchmarkId::from_parameter(&profile.name),
            &profile,
            |b, profile| {
                b.iter(|| {
                    let krate = generate_crate(profile, DEFAULT_SEED);
                    assert!(krate.program.bodies.len() > 10);
                    krate.loc()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1_corpus);
criterion_main!(benches);
