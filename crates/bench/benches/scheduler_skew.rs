//! Scheduler-skew benchmark: level-barrier vs work-stealing `analyze_all`
//! on a corpus built to maximize per-level cost skew.
//!
//! The workload puts one *giant* SCC (a mutual-recursion cycle whose
//! members are expensive to summarize: naive recursion re-analyzes partner
//! bodies around the cycle) in the same scheduling level as many cheap leaf
//! functions, and stacks a deep call chain on top of one leaf. Under level
//! barriers the chain cannot start until the giant SCC finishes — every
//! level-0 worker joins before level 1 — so wall-clock is `giant + chain`.
//! The work-stealing scheduler releases each chain link the moment its
//! callee is summarized, so the chain overlaps the giant SCC and wall-clock
//! is `max(giant, chain)`.
//!
//! The headline check asserts the win two ways:
//!
//! 1. **Deterministically**, by measuring every component's summary cost
//!    once (sequentially) and computing the makespan each scheduler's
//!    policy yields for two workers — barrier: sum over levels of the
//!    level's list-scheduled maximum; work-stealing: event-driven greedy
//!    over the condensation DAG. This captures the *structural* win and is
//!    immune to runner core counts and noise.
//! 2. **On the wall clock**, comparing real `analyze_all` runs — asserted
//!    only when the machine actually has ≥ 2 cores (with one core there is
//!    nothing to overlap and both schedules degenerate to sequential).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowistry_core::{compute_summary, AnalysisParams, CachedSummary, Condition};
use flowistry_engine::{AnalysisEngine, EngineConfig, SchedulerKind};
use flowistry_lang::types::FuncId;
use flowistry_lang::CallGraph;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One giant `scc_size`-cycle plus `leaves` trivial functions in level 0,
/// and a `chain_depth`-deep caller chain rooted at leaf `s0`.
fn skewed_source(scc_size: usize, leaves: usize, chain_depth: usize) -> String {
    let mut src = String::new();
    for i in 0..scc_size {
        let next = (i + 1) % scc_size;
        let _ = writeln!(
            src,
            "fn g{i}(p: &mut i32, v: i32) -> i32 {{
                 let a = v + 1;
                 let mut b = a * 2;
                 if b > 6 {{ b = b - v; }} else {{ *p = *p + a; }}
                 let c = b + a;
                 let r = g{next}(p, c);
                 let d = r + c;
                 return d;
             }}"
        );
    }
    for i in 0..leaves {
        let _ = writeln!(
            src,
            "fn s{i}(p: &mut i32, v: i32) -> i32 {{
                 if v > 0 {{ *p = *p + v; }} else {{ *p = v; }}
                 return v * 2;
             }}"
        );
    }
    for i in 0..chain_depth {
        let callee = if i == 0 {
            "s0".to_string()
        } else {
            format!("c{}", i - 1)
        };
        let _ = writeln!(
            src,
            "fn c{i}(p: &mut i32, v: i32) -> i32 {{
                 let r1 = {callee}(p, v + 1);
                 let r2 = {callee}(p, r1);
                 let mut acc = r1 + r2;
                 if acc > 10 {{ acc = acc - v; }} else {{ *p = *p + acc; }}
                 return acc;
             }}"
        );
    }
    src
}

/// Measures every component's summary cost with one sequential bottom-up
/// pass (callee summaries seeded exactly as either scheduler would).
fn component_costs(
    program: &flowistry_lang::CompiledProgram,
    call_graph: &CallGraph,
    params: &AnalysisParams,
) -> Vec<f64> {
    let mut store: HashMap<FuncId, CachedSummary> = HashMap::new();
    let mut costs = vec![0.0; call_graph.sccs().len()];
    for (idx, members) in call_graph.sccs().iter().enumerate() {
        let start = Instant::now();
        let produced: Vec<(FuncId, CachedSummary)> = members
            .iter()
            .map(|&f| (f, compute_summary(program, f, params, &store)))
            .collect();
        costs[idx] = start.elapsed().as_secs_f64();
        store.extend(produced);
    }
    costs
}

fn argmin(loads: &[f64]) -> usize {
    let mut best = 0;
    for (i, &l) in loads.iter().enumerate() {
        if l < loads[best] {
            best = i;
        }
    }
    best
}

/// Makespan of the level-barrier policy on `workers` workers: per level,
/// longest-processing-time list scheduling; levels are strict barriers.
fn barrier_makespan(call_graph: &CallGraph, costs: &[f64], workers: usize) -> f64 {
    call_graph
        .schedule_levels()
        .iter()
        .map(|level| {
            let mut level_costs: Vec<f64> = level.iter().map(|&scc| costs[scc]).collect();
            level_costs.sort_by(|a, b| b.partial_cmp(a).expect("finite costs"));
            let mut loads = vec![0.0f64; workers];
            for cost in level_costs {
                let slot = argmin(&loads);
                loads[slot] += cost;
            }
            loads.iter().fold(0.0f64, |a, &b| a.max(b))
        })
        .sum()
}

/// Makespan of a barrier-free greedy schedule on `workers` workers: a
/// component starts as soon as a worker is free and its callees are done —
/// the policy work stealing implements (event-driven simulation).
fn work_stealing_makespan(call_graph: &CallGraph, costs: &[f64], workers: usize) -> f64 {
    let mut deps = call_graph.scc_dependency_counts();
    let mut ready: Vec<usize> = (0..deps.len()).filter(|&s| deps[s] == 0).collect();
    let mut running: Vec<(f64, usize)> = Vec::new(); // (finish time, scc)
    let mut now = 0.0f64;
    let mut makespan = 0.0f64;
    let mut left = deps.len();
    while left > 0 {
        while running.len() < workers && !ready.is_empty() {
            // Largest ready component first, mirroring LPT.
            let pick = (0..ready.len())
                .max_by(|&a, &b| {
                    costs[ready[a]]
                        .partial_cmp(&costs[ready[b]])
                        .expect("finite costs")
                })
                .expect("nonempty ready set");
            let scc = ready.swap_remove(pick);
            running.push((now + costs[scc], scc));
        }
        // Advance to the next completion.
        let next = (0..running.len())
            .min_by(|&a, &b| running[a].0.partial_cmp(&running[b].0).expect("finite"))
            .expect("running set nonempty while work remains");
        let (finish, scc) = running.swap_remove(next);
        now = finish;
        makespan = makespan.max(finish);
        left -= 1;
        for &caller in call_graph.scc_callers(scc) {
            deps[caller] -= 1;
            if deps[caller] == 0 {
                ready.push(caller);
            }
        }
    }
    makespan
}

fn cold_seconds(
    program: &std::sync::Arc<flowistry_lang::CompiledProgram>,
    params: &AnalysisParams,
    scheduler: SchedulerKind,
    threads: usize,
) -> f64 {
    let mut engine = AnalysisEngine::new(
        program.clone(),
        EngineConfig::default()
            .with_params(params.clone())
            .with_scheduler(scheduler)
            .with_threads(threads),
    );
    let start = Instant::now();
    engine.analyze_all();
    start.elapsed().as_secs_f64()
}

fn bench_skewed_scc(c: &mut Criterion) {
    // Tuned so the giant SCC's cost is comparable to the chain's total
    // cost: the barrier schedule pays `giant + chain`, work stealing
    // `max(giant, chain)`, putting the structural win near its 2x maximum.
    // (Retuned for the indexed dataflow domain: summaries now resolve once
    // per call site instead of once per fixpoint visit, which made cycle
    // members far cheaper relative to chain links — the SCC is bigger and
    // the chain shorter than the tree-domain tuning used.)
    let src = skewed_source(16, 16, 170);
    let program =
        std::sync::Arc::new(flowistry_lang::compile(&src).expect("skewed corpus compiles"));
    let params = AnalysisParams::for_condition(Condition::WHOLE_PROGRAM);
    // Two workers are enough to expose the skew (one gets stuck on the
    // giant SCC, the other runs the chain).
    let threads = 2;

    let mut group = c.benchmark_group("scheduler_skew");
    group.sample_size(10);
    for (name, scheduler) in [
        ("level_barrier", SchedulerKind::LevelBarrier),
        ("work_stealing", SchedulerKind::WorkStealing),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, program| {
            b.iter(|| {
                let mut engine = AnalysisEngine::new(
                    program.clone(),
                    EngineConfig::default()
                        .with_params(params.clone())
                        .with_scheduler(scheduler)
                        .with_threads(threads),
                );
                engine.analyze_all().analyzed
            })
        });
    }
    group.finish();

    // Acceptance check 1: the structural win, on measured per-component
    // costs — deterministic, independent of the runner's core count.
    let call_graph = CallGraph::extract(&program);
    let costs = component_costs(&program, &call_graph, &params);
    let barrier_sim = barrier_makespan(&call_graph, &costs, threads);
    let stealing_sim = work_stealing_makespan(&call_graph, &costs, threads);
    println!(
        "scheduler_skew/makespan ({} components, {threads} workers): \
         barrier {:.3} ms vs work-stealing {:.3} ms ({:.2}x)",
        costs.len(),
        barrier_sim * 1e3,
        stealing_sim * 1e3,
        barrier_sim / stealing_sim.max(1e-9)
    );
    assert!(
        stealing_sim < barrier_sim * 0.75,
        "on the skewed-SCC corpus the barrier-free schedule must beat the \
         level-barrier schedule decisively: {:.3} ms vs {:.3} ms",
        stealing_sim * 1e3,
        barrier_sim * 1e3
    );

    // Acceptance check 2: the same comparison on the wall clock, asserted
    // where overlap is physically possible (≥ 2 cores). Retried: runners
    // are noisy; the shape guarantees the win, the retry guards the
    // measurement.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut measurements = Vec::new();
    let mut won = false;
    for attempt in 0..3 {
        let barrier = cold_seconds(&program, &params, SchedulerKind::LevelBarrier, threads);
        let stealing = cold_seconds(&program, &params, SchedulerKind::WorkStealing, threads);
        println!(
            "scheduler_skew/attempt {attempt}: barrier {:.3} ms vs work-stealing {:.3} ms ({:.2}x)",
            barrier * 1e3,
            stealing * 1e3,
            barrier / stealing.max(1e-9)
        );
        measurements.push((barrier, stealing));
        if stealing < barrier {
            won = true;
            break;
        }
    }
    if cores < 2 {
        println!(
            "scheduler_skew: single-core machine — wall-clock overlap is \
             impossible, skipping the wall-clock assertion (the makespan \
             check above already asserted the structural win)"
        );
        return;
    }
    assert!(
        won,
        "work stealing must beat the level-barrier schedule on the skewed-SCC \
         corpus with {cores} cores; measurements (barrier, work-stealing) in \
         seconds: {measurements:?}"
    );
}

criterion_group!(benches, bench_skewed_scc);
criterion_main!(benches);
