//! # flowistry-dataflow: CFG analyses for the Flowistry reproduction
//!
//! A dependency-free toolkit of classic control-flow-graph algorithms used by
//! the information flow analysis (paper §4.1):
//!
//! * [`graph`] — a minimal directed-graph abstraction over basic blocks;
//! * [`engine`] — a generic forward dataflow engine over join-semilattices,
//!   iterated to fixpoint with a worklist;
//! * [`dominators`] — dominator and post-dominator trees via the
//!   Cooper–Harvey–Kennedy "simple, fast dominance" algorithm;
//! * [`control_deps`] — control dependence via post-dominance frontiers
//!   (Ferrante et al. / Cytron et al.);
//! * [`indexed`] — interned domains, hybrid bitsets and copy-on-write
//!   bit-matrices, the dense state representation the information flow
//!   fixpoint runs on.
//!
//! The crate is deliberately generic: graphs are just `usize`-indexed nodes
//! with successor/predecessor functions, so the engine is reusable for any
//! CFG shape (and is unit-tested on synthetic graphs independently of Rox).

#![warn(missing_docs)]

pub mod control_deps;
pub mod dominators;
pub mod engine;
pub mod graph;
pub mod indexed;

pub use control_deps::ControlDependencies;
pub use dominators::{DominatorTree, PostDominatorTree};
pub use engine::{Analysis, AnalysisResults, JoinSemiLattice};
pub use graph::{Graph, VecGraph};
pub use indexed::{BitSet, IndexMatrix, IndexedDomain};
