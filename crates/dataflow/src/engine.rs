//! A generic forward dataflow engine.
//!
//! The information flow analysis of the paper is "a flow-sensitive, forward
//! dataflow analysis pass" whose state forms a join-semilattice and which is
//! "iterated to a fixpoint" (§4.1). This module provides that engine,
//! parameterized over the lattice and the per-node transfer function, so it
//! can be unit-tested independently (e.g. on reaching-definitions-style toy
//! analyses) and reused by the `flowistry-core` crate.

use crate::graph::Graph;

/// A join-semilattice: a partial order with a least upper bound.
pub trait JoinSemiLattice: Clone + Eq {
    /// Joins `other` into `self`, returning `true` if `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

impl JoinSemiLattice for bool {
    fn join(&mut self, other: &Self) -> bool {
        let old = *self;
        *self |= *other;
        *self != old
    }
}

impl<T: Ord + Clone> JoinSemiLattice for std::collections::BTreeSet<T> {
    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for item in other {
            // `insert` already reports whether the value was new — no
            // `contains` pre-check, no second tree descent.
            changed |= self.insert(item.clone());
        }
        changed
    }
}

impl<K: Ord + Clone, V: JoinSemiLattice> JoinSemiLattice for std::collections::BTreeMap<K, V> {
    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (k, v) in other {
            match self.get_mut(k) {
                Some(existing) => changed |= existing.join(v),
                None => {
                    self.insert(k.clone(), v.clone());
                    changed = true;
                }
            }
        }
        changed
    }
}

/// A forward dataflow analysis over a CFG whose nodes are basic blocks.
pub trait Analysis {
    /// The lattice of facts tracked per program point.
    type Domain: JoinSemiLattice;

    /// The initial state at the entry of the start node.
    fn bottom(&self) -> Self::Domain;

    /// The state on function entry (e.g. parameters initialized).
    fn initial(&self) -> Self::Domain {
        self.bottom()
    }

    /// Applies the whole block `node` to `state` in place.
    fn transfer_block(&self, node: usize, state: &mut Self::Domain);
}

/// The result of running an [`Analysis`]: the entry state of every block.
#[derive(Debug, Clone)]
pub struct AnalysisResults<D> {
    entry_states: Vec<D>,
    iterations: usize,
}

impl<D: JoinSemiLattice> AnalysisResults<D> {
    /// The state at the entry of `node`.
    pub fn entry(&self, node: usize) -> &D {
        &self.entry_states[node]
    }

    /// The state at the exit of `node`, recomputed by applying the block's
    /// transfer function to its entry state.
    pub fn exit(&self, node: usize, analysis: &impl Analysis<Domain = D>) -> D {
        let mut state = self.entry_states[node].clone();
        analysis.transfer_block(node, &mut state);
        state
    }

    /// Number of worklist iterations used to reach the fixpoint.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

/// Runs `analysis` over `graph` to a fixpoint and returns per-block entry
/// states.
///
/// Blocks are visited in reverse post-order; a worklist re-queues successors
/// whose entry state changed. Termination follows from the domain being a
/// join-semilattice with finite height on the facts actually generated, as
/// argued in §4.1 of the paper.
pub fn iterate_to_fixpoint<A: Analysis>(
    graph: &impl Graph,
    analysis: &A,
) -> AnalysisResults<A::Domain> {
    let n = graph.num_nodes();
    let mut entry_states: Vec<A::Domain> = vec![analysis.bottom(); n];
    entry_states[graph.start_node()] = analysis.initial();

    let rpo = graph.reverse_post_order();
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &node) in rpo.iter().enumerate() {
        rpo_index[node] = i;
    }

    let mut on_worklist = vec![false; n];
    let mut worklist: std::collections::BinaryHeap<std::cmp::Reverse<(usize, usize)>> =
        std::collections::BinaryHeap::new();
    worklist.push(std::cmp::Reverse((0, graph.start_node())));
    on_worklist[graph.start_node()] = true;

    let mut iterations = 0;
    while let Some(std::cmp::Reverse((_, node))) = worklist.pop() {
        on_worklist[node] = false;
        iterations += 1;

        let mut state = entry_states[node].clone();
        analysis.transfer_block(node, &mut state);

        for succ in graph.successors(node) {
            if entry_states[succ].join(&state) && !on_worklist[succ] {
                on_worklist[succ] = true;
                worklist.push(std::cmp::Reverse((rpo_index[succ], succ)));
            }
        }
    }

    AnalysisResults {
        entry_states,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VecGraph;
    use std::collections::BTreeSet;

    /// A toy "collecting" analysis: each block `b` adds `b` to the set; the
    /// entry set of a block is the union over paths of the blocks passed.
    struct Collect;

    impl Analysis for Collect {
        type Domain = BTreeSet<usize>;
        fn bottom(&self) -> Self::Domain {
            BTreeSet::new()
        }
        fn transfer_block(&self, node: usize, state: &mut Self::Domain) {
            state.insert(node);
        }
    }

    #[test]
    fn collects_predecessors_through_a_diamond() {
        let g = VecGraph::new(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let results = iterate_to_fixpoint(&g, &Collect);
        assert_eq!(results.entry(3), &BTreeSet::from([0, 1, 2]));
        assert_eq!(results.entry(1), &BTreeSet::from([0]));
        assert_eq!(results.entry(0), &BTreeSet::new());
        let exit3 = results.exit(3, &Collect);
        assert!(exit3.contains(&3));
    }

    #[test]
    fn reaches_fixpoint_on_loops() {
        // 0 -> 1 -> 2 -> 1, 1 -> 3
        let g = VecGraph::new(4, 0, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        let results = iterate_to_fixpoint(&g, &Collect);
        // The loop body 2 is part of the paths reaching 1 and 3.
        assert!(results.entry(1).contains(&2));
        assert!(results.entry(3).contains(&2));
        assert!(results.iterations() >= 4);
    }

    #[test]
    fn bool_lattice_join() {
        let mut a = false;
        assert!(a.join(&true));
        assert!(!a.join(&true));
        assert!(!a.join(&false));
        assert!(a);
    }

    #[test]
    fn btreemap_lattice_joins_keywise() {
        use std::collections::BTreeMap;
        let mut a: BTreeMap<&str, BTreeSet<u32>> = BTreeMap::new();
        a.insert("x", BTreeSet::from([1]));
        let mut b = BTreeMap::new();
        b.insert("x", BTreeSet::from([2]));
        b.insert("y", BTreeSet::from([3]));
        assert!(a.join(&b));
        assert_eq!(a["x"], BTreeSet::from([1, 2]));
        assert_eq!(a["y"], BTreeSet::from([3]));
        assert!(!a.join(&b));
    }

    #[test]
    fn set_join_reports_changes_accurately() {
        let mut a = BTreeSet::from([1, 2]);
        let b = BTreeSet::from([2, 3]);
        assert!(a.join(&b));
        assert_eq!(a, BTreeSet::from([1, 2, 3]));
        assert!(!a.join(&b));
    }

    /// Join of entry states must be order-insensitive: run the same analysis
    /// on graphs with permuted edge insertion order and compare.
    #[test]
    fn result_is_independent_of_edge_order() {
        let g1 = VecGraph::new(5, 0, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let g2 = VecGraph::new(5, 0, &[(3, 4), (2, 3), (1, 3), (0, 2), (0, 1)]);
        let r1 = iterate_to_fixpoint(&g1, &Collect);
        let r2 = iterate_to_fixpoint(&g2, &Collect);
        for n in 0..5 {
            assert_eq!(r1.entry(n), r2.entry(n));
        }
    }
}
