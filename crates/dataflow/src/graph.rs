//! A minimal directed-graph abstraction for control-flow graphs.

/// A directed graph whose nodes are `0..num_nodes()`.
///
/// Control-flow graphs implement this trait so the dominator, control
/// dependence and dataflow algorithms can stay independent of the MIR
/// representation.
pub trait Graph {
    /// Number of nodes; node ids are `0..num_nodes()`.
    fn num_nodes(&self) -> usize;
    /// The entry node.
    fn start_node(&self) -> usize;
    /// Successors of `node`.
    fn successors(&self, node: usize) -> Vec<usize>;
    /// Predecessors of `node`.
    fn predecessors(&self, node: usize) -> Vec<usize>;

    /// Nodes in reverse post-order from the start node (a topological order
    /// for acyclic graphs; loops appear in a stable order).
    fn reverse_post_order(&self) -> Vec<usize> {
        let mut visited = vec![false; self.num_nodes()];
        let mut post = Vec::with_capacity(self.num_nodes());
        // Iterative DFS with an explicit stack of (node, next-child-index).
        let mut stack = vec![(self.start_node(), 0usize)];
        visited[self.start_node()] = true;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let succs = self.successors(node);
            if *idx < succs.len() {
                let child = succs[*idx];
                *idx += 1;
                if !visited[child] {
                    visited[child] = true;
                    stack.push((child, 0));
                }
            } else {
                post.push(node);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Nodes reachable from the start node.
    fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes()];
        let mut stack = vec![self.start_node()];
        seen[self.start_node()] = true;
        while let Some(n) = stack.pop() {
            for s in self.successors(n) {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

/// A simple adjacency-list graph, useful for tests and for building derived
/// graphs (e.g. the reversed CFG used for post-dominators).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecGraph {
    start: usize,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl VecGraph {
    /// Builds a graph with `n` nodes, the given entry node, and edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint or the start node is out of range.
    pub fn new(n: usize, start: usize, edges: &[(usize, usize)]) -> Self {
        assert!(start < n, "start node out of range");
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge endpoint out of range");
            succs[a].push(b);
            preds[b].push(a);
        }
        VecGraph {
            start,
            succs,
            preds,
        }
    }

    /// The graph with every edge reversed and a new start node.
    pub fn reversed(&self, new_start: usize) -> VecGraph {
        let mut edges = Vec::new();
        for (a, succs) in self.succs.iter().enumerate() {
            for &b in succs {
                edges.push((b, a));
            }
        }
        VecGraph::new(self.succs.len(), new_start, &edges)
    }
}

impl Graph for VecGraph {
    fn num_nodes(&self) -> usize {
        self.succs.len()
    }
    fn start_node(&self) -> usize {
        self.start
    }
    fn successors(&self, node: usize) -> Vec<usize> {
        self.succs[node].clone()
    }
    fn predecessors(&self, node: usize) -> Vec<usize> {
        self.preds[node].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> VecGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        VecGraph::new(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn successors_and_predecessors() {
        let g = diamond();
        assert_eq!(g.successors(0), vec![1, 2]);
        assert_eq!(g.predecessors(3), vec![1, 2]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.start_node(), 0);
    }

    #[test]
    fn reverse_post_order_starts_at_entry() {
        let g = diamond();
        let rpo = g.reverse_post_order();
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 4);
        // 3 must come after both 1 and 2.
        let pos = |n: usize| rpo.iter().position(|&x| x == n).unwrap();
        assert!(pos(3) > pos(1));
        assert!(pos(3) > pos(2));
    }

    #[test]
    fn reverse_post_order_handles_cycles() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3
        let g = VecGraph::new(4, 0, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let rpo = g.reverse_post_order();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], 0);
    }

    #[test]
    fn reachability_ignores_disconnected_nodes() {
        let g = VecGraph::new(5, 0, &[(0, 1), (1, 2)]);
        let reach = g.reachable();
        assert_eq!(reach, vec![true, true, true, false, false]);
    }

    #[test]
    fn reversed_graph_swaps_edges() {
        let g = diamond();
        let r = g.reversed(3);
        assert_eq!(r.successors(3), vec![1, 2]);
        assert_eq!(r.predecessors(0), vec![1, 2]);
        assert_eq!(r.start_node(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let _ = VecGraph::new(2, 0, &[(0, 5)]);
    }
}
