//! Control dependence.
//!
//! Following Ferrante et al. (cited as [15] in the paper): a node `X` is
//! control-dependent on `Y` if `Y` has a successor from which every path to
//! the exit passes through `X` (i.e. `X` post-dominates that successor), but
//! `X` does not post-dominate `Y` itself. Equivalently, `Y` is in the
//! post-dominance frontier of `X` (Cytron et al., cited as [11]).
//!
//! The paper uses control dependence to add *indirect* flows: the condition
//! of a branch flows into every place mutated inside that branch (Figure 1's
//! `switch` dependency on `*h`).

use crate::dominators::PostDominatorTree;
use crate::graph::Graph;
use std::collections::BTreeSet;

/// Control dependencies of every node in a CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlDependencies {
    /// `deps[x]` = the set of nodes `y` such that `x` is control-dependent
    /// on `y`.
    deps: Vec<BTreeSet<usize>>,
}

impl ControlDependencies {
    /// Computes control dependencies using the post-dominance frontier.
    ///
    /// `exits` are the return nodes of the CFG (panic edges excluded, per
    /// §4.1 of the paper).
    pub fn new(graph: &impl Graph, exits: &[usize]) -> Self {
        let pdt = PostDominatorTree::new(graph, exits);
        let n = graph.num_nodes();
        let mut deps = vec![BTreeSet::new(); n];

        // Post-dominance frontier, computed directly from the definition:
        // for each edge (y -> s), walk up the post-dominator tree from s
        // until reaching the immediate post-dominator of y; every node
        // passed is control-dependent on y.
        for y in 0..n {
            let succs = graph.successors(y);
            if succs.len() < 2 {
                continue; // only branch points induce control dependence
            }
            let y_ipdom = pdt.immediate_post_dominator(y);
            for s in succs {
                let mut runner = Some(s);
                while let Some(x) = runner {
                    if Some(x) == y_ipdom || !pdt.reaches_exit(x) {
                        break;
                    }
                    if x != y {
                        deps[x].insert(y);
                    } else {
                        // A loop header can be control-dependent on itself;
                        // record it and stop walking.
                        deps[x].insert(y);
                        break;
                    }
                    runner = pdt.immediate_post_dominator(x);
                }
            }
        }

        ControlDependencies { deps }
    }

    /// The nodes that `node` is control-dependent on.
    pub fn dependencies(&self, node: usize) -> &BTreeSet<usize> {
        &self.deps[node]
    }

    /// Whether `node` is control-dependent on `on`.
    pub fn is_dependent(&self, node: usize, on: usize) -> bool {
        self.deps[node].contains(&on)
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether the graph had no nodes.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VecGraph;

    #[test]
    fn branches_of_a_diamond_depend_on_the_condition() {
        // 0: switch -> {1, 2}; both -> 3 (return)
        let g = VecGraph::new(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let cd = ControlDependencies::new(&g, &[3]);
        assert!(cd.is_dependent(1, 0));
        assert!(cd.is_dependent(2, 0));
        assert!(!cd.is_dependent(3, 0));
        assert!(cd.dependencies(0).is_empty());
        assert_eq!(cd.len(), 4);
        assert!(!cd.is_empty());
    }

    #[test]
    fn join_node_is_not_dependent_but_early_return_changes_that() {
        // 0 -> {1, 2}; 1 -> 3(return); 2 -> 4 -> 3? No: early return:
        // 0: switch -> 1 (then: return), or -> 2; 2 -> 3 (return).
        // Node 2 and 3 execute only when the false branch is taken, so both
        // are control-dependent on 0.
        let g = VecGraph::new(4, 0, &[(0, 1), (0, 2), (2, 3)]);
        let cd = ControlDependencies::new(&g, &[1, 3]);
        assert!(cd.is_dependent(1, 0));
        assert!(cd.is_dependent(2, 0));
        assert!(cd.is_dependent(3, 0));
    }

    #[test]
    fn loop_body_depends_on_loop_header() {
        // 0 -> 1 (header switch) -> 2 (body) -> 1; 1 -> 3 (return)
        let g = VecGraph::new(4, 0, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        let cd = ControlDependencies::new(&g, &[3]);
        assert!(cd.is_dependent(2, 1));
        // The header itself re-executes depending on its own condition.
        assert!(cd.is_dependent(1, 1));
        // The exit block runs unconditionally (eventually), so it is not
        // control-dependent on the header.
        assert!(!cd.is_dependent(3, 1));
    }

    #[test]
    fn nested_branches_accumulate_dependencies() {
        // 0 -> {1, 5}; 1 -> {2, 3}; 2 -> 4; 3 -> 4; 4 -> 5; 5: return
        let g = VecGraph::new(
            6,
            0,
            &[(0, 1), (0, 5), (1, 2), (1, 3), (2, 4), (3, 4), (4, 5)],
        );
        let cd = ControlDependencies::new(&g, &[5]);
        assert!(cd.is_dependent(1, 0));
        assert!(cd.is_dependent(2, 1));
        assert!(cd.is_dependent(3, 1));
        assert!(cd.is_dependent(4, 0));
        assert!(!cd.is_dependent(4, 1));
        assert!(!cd.is_dependent(5, 0));
    }

    #[test]
    fn straight_line_code_has_no_control_dependence() {
        let g = VecGraph::new(3, 0, &[(0, 1), (1, 2)]);
        let cd = ControlDependencies::new(&g, &[2]);
        for n in 0..3 {
            assert!(cd.dependencies(n).is_empty());
        }
    }

    #[test]
    fn infinite_loop_nodes_do_not_panic() {
        // 0 -> 1 -> 1 (no exit reachable from 1)
        let g = VecGraph::new(2, 0, &[(0, 1), (1, 1)]);
        let cd = ControlDependencies::new(&g, &[]);
        // Nothing to assert beyond "it terminates and is well-formed".
        assert_eq!(cd.len(), 2);
    }
}
