//! Dominator and post-dominator trees.
//!
//! Implements the "A Simple, Fast Dominance Algorithm" of Cooper, Harvey and
//! Kennedy, which the paper cites for computing the post-dominator tree used
//! by the control-dependence analysis (§4.1).

use crate::graph::{Graph, VecGraph};

/// The immediate-dominator tree of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominatorTree {
    /// `idom[n]` is the immediate dominator of `n`; the root is its own
    /// immediate dominator; unreachable nodes have `None`.
    idom: Vec<Option<usize>>,
    root: usize,
}

impl DominatorTree {
    /// Computes the dominator tree of `graph` rooted at its start node.
    pub fn new(graph: &impl Graph) -> Self {
        let rpo = graph.reverse_post_order();
        let mut order_index = vec![usize::MAX; graph.num_nodes()];
        for (i, &n) in rpo.iter().enumerate() {
            order_index[n] = i;
        }
        let root = graph.start_node();
        let mut idom: Vec<Option<usize>> = vec![None; graph.num_nodes()];
        idom[root] = Some(root);

        let mut changed = true;
        while changed {
            changed = false;
            for &node in rpo.iter().skip(1) {
                let preds: Vec<usize> = graph
                    .predecessors(node)
                    .into_iter()
                    .filter(|&p| order_index[p] != usize::MAX)
                    .collect();
                let mut new_idom: Option<usize> = None;
                for &p in &preds {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &order_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[node] != Some(ni) {
                        idom[node] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        DominatorTree { idom, root }
    }

    /// The immediate dominator of `node`, or `None` for the root and for
    /// unreachable nodes.
    pub fn immediate_dominator(&self, node: usize) -> Option<usize> {
        match self.idom.get(node).copied().flatten() {
            Some(d) if node != self.root => Some(d),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (every path from the root to `b` goes
    /// through `a`). A node dominates itself.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom.get(b).copied().flatten().is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.root {
                return false;
            }
            match self.idom[cur] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// Whether `node` is reachable from the root.
    pub fn is_reachable(&self, node: usize) -> bool {
        self.idom.get(node).copied().flatten().is_some()
    }

    /// The root of the tree.
    pub fn root(&self) -> usize {
        self.root
    }
}

fn intersect(idom: &[Option<usize>], order_index: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while order_index[a] > order_index[b] {
            a = idom[a].expect("node in intersect without idom");
        }
        while order_index[b] > order_index[a] {
            b = idom[b].expect("node in intersect without idom");
        }
    }
    a
}

/// The post-dominator tree of a CFG: the dominator tree of the reversed
/// graph, rooted at a virtual exit that all return nodes feed into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostDominatorTree {
    tree: DominatorTree,
    /// Index of the synthetic exit node appended after the real nodes.
    virtual_exit: usize,
}

impl PostDominatorTree {
    /// Builds the post-dominator tree of `graph`, where `exits` are the
    /// nodes that leave the function (return terminators).
    ///
    /// A virtual exit node is appended and every exit node gets an edge to
    /// it, so the tree is well-defined even with multiple returns. Panic
    /// paths are intentionally *not* included, matching the paper's decision
    /// to exclude panics from control dependence (§4.1).
    pub fn new(graph: &impl Graph, exits: &[usize]) -> Self {
        let n = graph.num_nodes();
        let virtual_exit = n;
        let mut edges = Vec::new();
        for node in 0..n {
            for succ in graph.successors(node) {
                edges.push((succ, node)); // reversed
            }
        }
        for &e in exits {
            edges.push((virtual_exit, e)); // reversed edge exit -> virtual
        }
        let reversed = VecGraph::new(n + 1, virtual_exit, &edges);
        let tree = DominatorTree::new(&reversed);
        PostDominatorTree { tree, virtual_exit }
    }

    /// Whether `a` post-dominates `b`: every path from `b` to an exit passes
    /// through `a`. A node post-dominates itself.
    pub fn post_dominates(&self, a: usize, b: usize) -> bool {
        self.tree.dominates(a, b)
    }

    /// The immediate post-dominator of `node`, if any (the virtual exit is
    /// reported as `None`).
    pub fn immediate_post_dominator(&self, node: usize) -> Option<usize> {
        match self.tree.immediate_dominator(node) {
            Some(d) if d != self.virtual_exit => Some(d),
            _ => None,
        }
    }

    /// Whether `node` can reach an exit.
    pub fn reaches_exit(&self, node: usize) -> bool {
        self.tree.is_reachable(node)
    }

    /// The synthetic exit node id (one past the last real node).
    pub fn virtual_exit(&self) -> usize {
        self.virtual_exit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VecGraph;

    /// The classic if/else diamond: 0 -> {1,2} -> 3.
    fn diamond() -> VecGraph {
        VecGraph::new(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn dominators_of_diamond() {
        let d = DominatorTree::new(&diamond());
        assert_eq!(d.immediate_dominator(1), Some(0));
        assert_eq!(d.immediate_dominator(2), Some(0));
        assert_eq!(d.immediate_dominator(3), Some(0));
        assert_eq!(d.immediate_dominator(0), None);
        assert!(d.dominates(0, 3));
        assert!(!d.dominates(1, 3));
        assert!(d.dominates(3, 3));
    }

    #[test]
    fn dominators_of_loop() {
        // 0 -> 1 -> 2 -> 1 and 1 -> 3 (loop with exit)
        let g = VecGraph::new(4, 0, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        let d = DominatorTree::new(&g);
        assert_eq!(d.immediate_dominator(2), Some(1));
        assert_eq!(d.immediate_dominator(3), Some(1));
        assert!(d.dominates(1, 2));
        assert!(d.dominates(0, 3));
    }

    #[test]
    fn unreachable_nodes_have_no_dominator() {
        let g = VecGraph::new(3, 0, &[(0, 1)]);
        let d = DominatorTree::new(&g);
        assert!(!d.is_reachable(2));
        assert_eq!(d.immediate_dominator(2), None);
        assert!(!d.dominates(0, 2));
    }

    #[test]
    fn post_dominators_of_diamond() {
        let pd = PostDominatorTree::new(&diamond(), &[3]);
        assert!(pd.post_dominates(3, 0));
        assert!(pd.post_dominates(3, 1));
        assert!(!pd.post_dominates(1, 0));
        assert!(pd.post_dominates(1, 1));
        assert_eq!(pd.immediate_post_dominator(0), Some(3));
        assert_eq!(pd.immediate_post_dominator(1), Some(3));
    }

    #[test]
    fn post_dominators_with_multiple_exits() {
        // 0 -> 1 (return), 0 -> 2 -> 3 (return)
        let g = VecGraph::new(4, 0, &[(0, 1), (0, 2), (2, 3)]);
        let pd = PostDominatorTree::new(&g, &[1, 3]);
        // Neither 1 nor 3 post-dominates 0 because the other path exists.
        assert!(!pd.post_dominates(1, 0));
        assert!(!pd.post_dominates(3, 0));
        assert!(pd.post_dominates(3, 2));
        assert_eq!(pd.immediate_post_dominator(0), None);
    }

    #[test]
    fn loop_body_does_not_post_dominate_header() {
        // while loop: 0 -> 1 (header) -> 2 (body) -> 1, 1 -> 3 (exit/return)
        let g = VecGraph::new(4, 0, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        let pd = PostDominatorTree::new(&g, &[3]);
        assert!(!pd.post_dominates(2, 1));
        assert!(pd.post_dominates(1, 2));
        assert!(pd.post_dominates(3, 0));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive_on_a_chain() {
        let g = VecGraph::new(4, 0, &[(0, 1), (1, 2), (2, 3)]);
        let d = DominatorTree::new(&g);
        for n in 0..4 {
            assert!(d.dominates(n, n));
        }
        assert!(d.dominates(0, 3));
        assert!(d.dominates(1, 3));
        assert!(d.dominates(1, 2));
    }
}
