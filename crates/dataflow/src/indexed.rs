//! Indexed domains and dense bit-matrices.
//!
//! The information flow analysis of the paper runs interactively because the
//! real Flowistry artifact iterates its fixpoint over *interned* domains:
//! every place and dependency is assigned a dense integer up front, the
//! dataflow state is a matrix of bitsets, and the per-block join is a
//! wordwise OR. This module provides those building blocks, kept generic and
//! std-only so they are reusable by any analysis built on [`crate::engine`]:
//!
//! * [`IndexedDomain`] — a value ↔ dense `u32` interner;
//! * [`BitSet`] — a hybrid bitset (inline words for small sets, spilling to
//!   a boxed word vector when the universe outgrows them);
//! * [`IndexMatrix`] — one bitset row per interned key, with copy-on-write
//!   rows (`Arc`'d, cloned only when written) so snapshotting the state
//!   after every statement stops deep-copying unchanged rows.

use crate::engine::JoinSemiLattice;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// A bidirectional mapping between values and dense `u32` indices.
///
/// Interning is append-only: the index of a value never changes once
/// assigned, so indices can be baked into precomputed lookup tables.
#[derive(Debug, Clone, Default)]
pub struct IndexedDomain<T> {
    values: Vec<T>,
    indices: HashMap<T, u32>,
}

impl<T: Clone + Eq + Hash> IndexedDomain<T> {
    /// An empty domain.
    pub fn new() -> Self {
        IndexedDomain {
            values: Vec::new(),
            indices: HashMap::new(),
        }
    }

    /// Returns the index of `value`, interning it if it is new.
    pub fn intern(&mut self, value: T) -> u32 {
        if let Some(&idx) = self.indices.get(&value) {
            return idx;
        }
        let idx = u32::try_from(self.values.len()).expect("domain exceeds u32 indices");
        self.values.push(value.clone());
        self.indices.insert(value, idx);
        idx
    }

    /// The index of `value`, if it has been interned.
    pub fn index_of(&self, value: &T) -> Option<u32> {
        self.indices.get(value).copied()
    }

    /// The value at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` was never returned by [`IndexedDomain::intern`].
    pub fn value(&self, index: u32) -> &T {
        &self.values[index as usize]
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All interned values in index order.
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }

    /// Consumes the interner, keeping only the index-ordered value table.
    pub fn into_values(self) -> Vec<T> {
        self.values
    }
}

/// Number of words stored inline before a [`BitSet`] spills to the heap.
/// Two words = 128 bits, enough for the dependency sets of most real
/// function bodies.
const INLINE_WORDS: usize = 2;

const BITS_PER_WORD: u32 = 64;

#[derive(Debug, Clone)]
enum Words {
    Inline([u64; INLINE_WORDS]),
    // Boxed so the spilled variant is one pointer wide: the enum stays the
    // size of the inline array, keeping unspilled sets (the common case)
    // dense in row storage.
    #[allow(clippy::box_collection)]
    Spilled(Box<Vec<u64>>),
}

/// A hybrid bitset over `u32` indices.
///
/// Small sets (indices below `128`) live entirely inline with zero heap
/// traffic; inserting a larger index spills the words to a boxed vector.
/// Capacity is implicit — any index beyond the stored words is simply
/// absent — so sets over differently sized universes compare and union
/// freely.
#[derive(Debug, Clone)]
pub struct BitSet {
    words: Words,
}

impl Default for BitSet {
    fn default() -> Self {
        BitSet::new()
    }
}

impl BitSet {
    /// An empty set.
    pub fn new() -> Self {
        BitSet {
            words: Words::Inline([0; INLINE_WORDS]),
        }
    }

    fn words(&self) -> &[u64] {
        match &self.words {
            Words::Inline(w) => w,
            Words::Spilled(v) => v,
        }
    }

    /// Grows the word storage so `word_index` is addressable, spilling the
    /// inline words to the heap if needed.
    fn grow_to(&mut self, word_index: usize) {
        if word_index < self.words().len() {
            return;
        }
        match &mut self.words {
            Words::Inline(w) => {
                let mut v = Vec::with_capacity(word_index + 1);
                v.extend_from_slice(w);
                v.resize(word_index + 1, 0);
                self.words = Words::Spilled(Box::new(v));
            }
            Words::Spilled(v) => v.resize(word_index + 1, 0),
        }
    }

    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.words {
            Words::Inline(w) => w,
            Words::Spilled(v) => v,
        }
    }

    /// Inserts `bit`, returning `true` if it was new.
    pub fn insert(&mut self, bit: u32) -> bool {
        let (word, mask) = (
            (bit / BITS_PER_WORD) as usize,
            1u64 << (bit % BITS_PER_WORD),
        );
        self.grow_to(word);
        let slot = &mut self.words_mut()[word];
        let new = *slot & mask == 0;
        *slot |= mask;
        new
    }

    /// Whether `bit` is in the set.
    pub fn contains(&self, bit: u32) -> bool {
        let (word, mask) = (
            (bit / BITS_PER_WORD) as usize,
            1u64 << (bit % BITS_PER_WORD),
        );
        self.words().get(word).is_some_and(|w| w & mask != 0)
    }

    /// Whether the set has no bits.
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Number of bits in the set.
    pub fn count(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Removes every bit.
    pub fn clear(&mut self) {
        self.words_mut().fill(0);
    }

    /// ORs `other` into `self`, returning `true` if `self` changed.
    pub fn union(&mut self, other: &BitSet) -> bool {
        let other_words = other.words();
        let needed = other_words
            .iter()
            .rposition(|&w| w != 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        if needed > self.words().len() {
            self.grow_to(needed - 1);
        }
        let mut changed = false;
        let own = self.words_mut();
        for (slot, &w) in own.iter_mut().zip(other_words) {
            let merged = *slot | w;
            changed |= merged != *slot;
            *slot = merged;
        }
        changed
    }

    /// Whether `self` and `other` share any bit.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words()
            .iter()
            .zip(other.words())
            .any(|(a, b)| a & b != 0)
    }

    /// Whether every bit of `other` is also in `self` (so a union of
    /// `other` into `self` would change nothing).
    pub fn is_superset(&self, other: &BitSet) -> bool {
        let own = self.words();
        other
            .words()
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !own.get(i).copied().unwrap_or(0) == 0)
    }

    /// Iterates the set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words().iter().enumerate().flat_map(|(i, &word)| {
            let base = i as u32 * BITS_PER_WORD;
            std::iter::successors((word != 0).then_some(word), |w| {
                let next = w & (w - 1);
                (next != 0).then_some(next)
            })
            .map(move |w| base + w.trailing_zeros())
        })
    }
}

impl PartialEq for BitSet {
    /// Logical equality: trailing zero words (and inline vs spilled
    /// storage) do not matter.
    fn eq(&self, other: &Self) -> bool {
        let (a, b) = (self.words(), other.words());
        let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        short == &long[..short.len()] && long[short.len()..].iter().all(|&w| w == 0)
    }
}

impl Eq for BitSet {}

impl FromIterator<u32> for BitSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut set = BitSet::new();
        for bit in iter {
            set.insert(bit);
        }
        set
    }
}

impl JoinSemiLattice for BitSet {
    fn join(&mut self, other: &Self) -> bool {
        self.union(other)
    }
}

/// A dense matrix of bitsets: one row per interned key.
///
/// Rows are `Arc`'d and copy-on-write — cloning a matrix clones row
/// *pointers*, and writing through [`IndexMatrix::row_mut`] clones the row's
/// words only if they are shared. A fixpoint that snapshots the state after
/// every statement therefore pays for the rows each statement touches, not
/// for the whole state.
#[derive(Debug, Clone, Default)]
pub struct IndexMatrix {
    rows: Vec<Option<Arc<BitSet>>>,
}

impl IndexMatrix {
    /// A matrix with `rows` empty rows.
    pub fn with_rows(rows: usize) -> Self {
        IndexMatrix {
            rows: vec![None; rows],
        }
    }

    fn ensure_len(&mut self, row: usize) {
        if row >= self.rows.len() {
            self.rows.resize(row + 1, None);
        }
    }

    /// Number of allocated row slots.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The row for `row`, if it has ever been written.
    pub fn row(&self, row: u32) -> Option<&BitSet> {
        self.rows.get(row as usize).and_then(|r| r.as_deref())
    }

    /// Mutable access to the row for `row`, creating it empty if missing
    /// and unsharing it if another matrix clone still points at it.
    pub fn row_mut(&mut self, row: u32) -> &mut BitSet {
        self.ensure_len(row as usize);
        let slot = &mut self.rows[row as usize];
        Arc::make_mut(slot.get_or_insert_with(|| Arc::new(BitSet::new())))
    }

    /// Inserts one bit into `row`, returning `true` if it was new.
    pub fn insert(&mut self, row: u32, bit: u32) -> bool {
        self.row_mut(row).insert(bit)
    }

    /// ORs `set` into `row`, returning `true` if the row changed. An empty
    /// union into a missing row does not materialize it.
    pub fn union_into_row(&mut self, row: u32, set: &BitSet) -> bool {
        if set.is_empty() {
            return false;
        }
        self.row_mut(row).union(set)
    }

    /// Replaces `row` wholesale (a strong update).
    pub fn set_row(&mut self, row: u32, set: BitSet) {
        self.ensure_len(row as usize);
        self.rows[row as usize] = Some(Arc::new(set));
    }

    /// Joins `other` into `self` rowwise (wordwise OR per row), returning
    /// `true` if any row changed. A row `self` never wrote is *shared* with
    /// `other` (an `Arc` clone), not copied.
    pub fn join_rows(&mut self, other: &IndexMatrix) -> bool {
        let mut changed = false;
        for (index, other_row) in other.rows.iter().enumerate() {
            let Some(other_row) = other_row else {
                continue;
            };
            self.ensure_len(index);
            match &mut self.rows[index] {
                slot @ None => {
                    if !other_row.is_empty() {
                        *slot = Some(other_row.clone());
                        changed = true;
                    }
                }
                Some(own) => {
                    // Read-only no-change check before `make_mut`: near
                    // convergence most joins are no-ops, and unsharing a
                    // copy-on-write row just to discover that wastes an
                    // allocation and a word copy per shared row.
                    if !Arc::ptr_eq(own, other_row) && !own.is_superset(other_row) {
                        Arc::make_mut(own).union(other_row);
                        changed = true;
                    }
                }
            }
        }
        changed
    }
}

impl PartialEq for IndexMatrix {
    /// Logical equality: missing rows equal empty rows, and trailing empty
    /// rows do not matter.
    fn eq(&self, other: &Self) -> bool {
        let empty = BitSet::new();
        let len = self.rows.len().max(other.rows.len());
        (0..len).all(|i| {
            let a = self.rows.get(i).and_then(|r| r.as_deref());
            let b = other.rows.get(i).and_then(|r| r.as_deref());
            match (a, b) {
                (Some(a), Some(b)) => std::ptr::eq(a, b) || a == b,
                (Some(s), None) | (None, Some(s)) => *s == empty,
                (None, None) => true,
            }
        })
    }
}

impl Eq for IndexMatrix {}

impl JoinSemiLattice for IndexMatrix {
    fn join(&mut self, other: &Self) -> bool {
        self.join_rows(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_roundtrips_and_is_stable() {
        let mut domain = IndexedDomain::new();
        let a = domain.intern("a");
        let b = domain.intern("b");
        assert_eq!(domain.intern("a"), a);
        assert_ne!(a, b);
        assert_eq!(domain.value(a), &"a");
        assert_eq!(domain.index_of(&"b"), Some(b));
        assert_eq!(domain.index_of(&"zzz"), None);
        assert_eq!(domain.len(), 2);
        assert!(!domain.is_empty());
        assert_eq!(domain.as_slice(), &["a", "b"]);
        assert_eq!(domain.into_values(), vec!["a", "b"]);
    }

    #[test]
    fn bitset_inserts_and_iterates() {
        let mut set = BitSet::new();
        assert!(set.is_empty());
        assert!(set.insert(3));
        assert!(!set.insert(3));
        assert!(set.insert(64));
        assert!(set.contains(3));
        assert!(!set.contains(4));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 64]);
        assert_eq!(set.count(), 2);
        set.clear();
        assert!(set.is_empty());
    }

    #[test]
    fn bitset_spills_past_inline_capacity() {
        let mut set = BitSet::new();
        set.insert(5);
        // 128+ forces the spill; the inline bits must survive it.
        set.insert(1000);
        assert!(set.contains(5));
        assert!(set.contains(1000));
        assert!(!set.contains(999));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![5, 1000]);
    }

    #[test]
    fn bitset_equality_ignores_storage_representation() {
        let mut inline = BitSet::new();
        inline.insert(7);
        let mut spilled = BitSet::new();
        spilled.insert(7);
        spilled.insert(500);
        // Different word lengths, same logical content after clearing the
        // spilled-only bit: still equal.
        let mut spilled_cleared = spilled.clone();
        assert_ne!(inline, spilled);
        spilled_cleared.words_mut()[7] = 0;
        assert_eq!(inline, spilled_cleared);
        assert_eq!(spilled_cleared, inline);
    }

    #[test]
    fn bitset_union_reports_changes_and_grows() {
        let mut a: BitSet = [1, 2].into_iter().collect();
        let b: BitSet = [2, 300].into_iter().collect();
        assert!(a.union(&b));
        assert!(!a.union(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 300]);
        assert!(a.intersects(&b));
        let c: BitSet = [77].into_iter().collect();
        assert!(!a.intersects(&c));
        // Joining a small set into a large one must not shrink it.
        let mut big: BitSet = [400].into_iter().collect();
        assert!(big.join(&a));
        assert!(big.contains(400) && big.contains(300) && big.contains(1));
    }

    #[test]
    fn matrix_rows_are_copy_on_write() {
        let mut m = IndexMatrix::with_rows(4);
        m.insert(0, 10);
        m.insert(2, 20);
        let snapshot = m.clone();
        // Unwritten clone shares rows.
        assert!(Arc::ptr_eq(
            m.rows[0].as_ref().unwrap(),
            snapshot.rows[0].as_ref().unwrap()
        ));
        m.insert(0, 11);
        // The written row unshared; the untouched row is still shared.
        assert!(!Arc::ptr_eq(
            m.rows[0].as_ref().unwrap(),
            snapshot.rows[0].as_ref().unwrap()
        ));
        assert!(Arc::ptr_eq(
            m.rows[2].as_ref().unwrap(),
            snapshot.rows[2].as_ref().unwrap()
        ));
        assert!(!snapshot.row(0).unwrap().contains(11));
        assert!(m.row(0).unwrap().contains(11));
    }

    #[test]
    fn matrix_join_is_rowwise_or_and_shares_fresh_rows() {
        let mut a = IndexMatrix::with_rows(2);
        a.insert(0, 1);
        let mut b = IndexMatrix::with_rows(3);
        b.insert(0, 2);
        b.insert(2, 9);
        assert!(a.join(&b));
        assert!(!a.join(&b));
        assert_eq!(a.row(0).unwrap().iter().collect::<Vec<_>>(), vec![1, 2]);
        // Row 2 was fresh in `a`: it must be shared, not copied.
        assert!(Arc::ptr_eq(
            a.rows[2].as_ref().unwrap(),
            b.rows[2].as_ref().unwrap()
        ));
    }

    #[test]
    fn no_op_joins_do_not_unshare_rows() {
        let mut a = IndexMatrix::with_rows(1);
        a.insert(0, 1);
        a.insert(0, 2);
        let shared = a.clone();
        // `b` holds a subset in a distinct allocation: the join changes
        // nothing and must leave `a`'s row shared with `shared`.
        let mut b = IndexMatrix::with_rows(1);
        b.insert(0, 2);
        assert!(!a.join(&b));
        assert!(Arc::ptr_eq(
            a.rows[0].as_ref().unwrap(),
            shared.rows[0].as_ref().unwrap()
        ));
        // Superset checks across storage sizes.
        let big: BitSet = [1, 2, 500].into_iter().collect();
        let small: BitSet = [2].into_iter().collect();
        assert!(big.is_superset(&small));
        assert!(!small.is_superset(&big));
        assert!(big.is_superset(&BitSet::new()));
    }

    #[test]
    fn matrix_equality_is_logical() {
        let mut a = IndexMatrix::with_rows(2);
        a.insert(1, 5);
        let mut b = IndexMatrix::with_rows(8);
        b.insert(1, 5);
        assert_eq!(a, b);
        b.insert(7, 1);
        assert_ne!(a, b);
        // An explicitly emptied row equals a missing row.
        let mut c = IndexMatrix::with_rows(2);
        c.insert(1, 5);
        c.row_mut(0);
        assert_eq!(a, c);
        assert!(c.row(1).unwrap().contains(5));
        assert_eq!(c.num_rows(), 2);
        // union_into_row with an empty set does not materialize the row.
        let mut d = IndexMatrix::with_rows(1);
        assert!(!d.union_into_row(0, &BitSet::new()));
        assert!(d.rows[0].is_none());
        d.set_row(0, [3].into_iter().collect());
        assert!(d.row(0).unwrap().contains(3));
    }
}
