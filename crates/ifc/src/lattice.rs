//! Security lattices, policies and the lattice-based IFC checker.
//!
//! This module generalises the two-point `Secure`/`Insecure` split of the
//! paper's §6 IFC application into a policy engine over an arbitrary finite
//! [`SecurityLattice`]:
//!
//! * labels are interned [`Label`]s with `join`/`meet`/`≤` tables;
//! * a [`Policy`] assigns labels to functions, parameters and locals, gives
//!   sinks a *clearance* (the highest label they may observe) and names
//!   sanctioned *declassification* points;
//! * the [`PolicyChecker`] propagates labels along the information flow
//!   analysis' dependency rows and reports violations as structured
//!   [`IfcDiagnostic`]s carrying a *flow witness* — the backward slice from
//!   the sink back to the tainted sources.
//!
//! Policies can be written in the source itself (`#![lattice(multi_level)]`,
//! `#[label(High)]`, `#[sink(Low)]`, `#[declassify]`; see
//! [`Policy::from_annotations`]), derived from the legacy naming conventions
//! ([`Policy::from_conventions`]), or built programmatically.
//!
//! The legacy [`crate::IfcPolicy`] embeds exactly as the two-point instance
//! via [`Policy::from_legacy`]; the differential test suite asserts the two
//! checkers agree bit-for-bit on that embedding.

use flowistry_core::{analyze, AnalysisParams, Dep, DepSet, InfoFlowResults, ThetaExt};
use flowistry_lang::mir::{Body, Local, Location, TerminatorKind};
use flowistry_lang::types::FuncId;
use flowistry_lang::CompiledProgram;

use crate::IfcPolicy;

// ---------------------------------------------------------------------------
// Labels and lattices
// ---------------------------------------------------------------------------

/// An interned security label: an index into a [`SecurityLattice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl Label {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A finite security lattice: a set of named labels with a partial order
/// `≤` ("may flow to") and total `join`/`meet` tables.
///
/// Built-in instances:
///
/// | constructor | labels (bottom → top) |
/// |---|---|
/// | [`SecurityLattice::two_point`] | `Public < Secret` |
/// | [`SecurityLattice::multi_level`] | `Low < Med < High < TopSecret` |
/// | [`SecurityLattice::conf_integrity`] | product of `Public < Secret` and `Trusted < Untrusted` |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityLattice {
    names: Vec<String>,
    /// `leq[a][b]` ⇔ label `a` may flow to label `b`.
    leq: Vec<Vec<bool>>,
    join: Vec<Vec<u32>>,
    meet: Vec<Vec<u32>>,
    bottom: Label,
    top: Label,
}

impl SecurityLattice {
    /// Builds a lattice from a reflexive-transitive `≤` relation.
    ///
    /// # Panics
    ///
    /// Panics if the relation is not a lattice (some pair lacks a unique
    /// least upper or greatest lower bound). All public constructors build
    /// genuine lattices, so this is unreachable from outside the module.
    fn from_leq(names: Vec<String>, leq: Vec<Vec<bool>>) -> SecurityLattice {
        let n = names.len();
        let mut join = vec![vec![0u32; n]; n];
        let mut meet = vec![vec![0u32; n]; n];
        for a in 0..n {
            for b in 0..n {
                let ubs: Vec<usize> = (0..n).filter(|&u| leq[a][u] && leq[b][u]).collect();
                let lub = ubs
                    .iter()
                    .copied()
                    .find(|&u| ubs.iter().all(|&v| leq[u][v]))
                    .expect("partial order is not a join-semilattice");
                join[a][b] = lub as u32;
                let lbs: Vec<usize> = (0..n).filter(|&l| leq[l][a] && leq[l][b]).collect();
                let glb = lbs
                    .iter()
                    .copied()
                    .find(|&l| lbs.iter().all(|&v| leq[v][l]))
                    .expect("partial order is not a meet-semilattice");
                meet[a][b] = glb as u32;
            }
        }
        let bottom = Label(
            (0..n)
                .find(|&b| (0..n).all(|x| leq[b][x]))
                .expect("lattice has no bottom") as u32,
        );
        let top = Label(
            (0..n)
                .find(|&t| (0..n).all(|x| leq[x][t]))
                .expect("lattice has no top") as u32,
        );
        SecurityLattice {
            names,
            leq,
            join,
            meet,
            bottom,
            top,
        }
    }

    /// A totally ordered lattice `levels[0] < levels[1] < ...`.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn linear(levels: &[&str]) -> SecurityLattice {
        assert!(!levels.is_empty(), "a lattice needs at least one label");
        let n = levels.len();
        let names = levels.iter().map(|s| s.to_string()).collect();
        let leq = (0..n).map(|a| (0..n).map(|b| a <= b).collect()).collect();
        SecurityLattice::from_leq(names, leq)
    }

    /// The paper's two-point lattice: `Public < Secret`.
    pub fn two_point() -> SecurityLattice {
        SecurityLattice::linear(&["Public", "Secret"])
    }

    /// A linear multi-level lattice: `Low < Med < High < TopSecret`.
    pub fn multi_level() -> SecurityLattice {
        SecurityLattice::linear(&["Low", "Med", "High", "TopSecret"])
    }

    /// The componentwise product of two lattices. Labels are named
    /// `<left>_<right>` so they remain single identifiers usable in source
    /// annotations.
    pub fn product(a: &SecurityLattice, b: &SecurityLattice) -> SecurityLattice {
        let mut names = Vec::new();
        for an in &a.names {
            for bn in &b.names {
                names.push(format!("{an}_{bn}"));
            }
        }
        let (na, nb) = (a.names.len(), b.names.len());
        let n = na * nb;
        let leq = (0..n)
            .map(|x| {
                (0..n)
                    .map(|y| a.leq[x / nb][y / nb] && b.leq[x % nb][y % nb])
                    .collect()
            })
            .collect();
        SecurityLattice::from_leq(names, leq)
    }

    /// The confidentiality × integrity product lattice. Confidentiality is
    /// `Public < Secret`; integrity is `Trusted < Untrusted` (untrusted data
    /// is the *more* restricted pole: it must not flow into trusted sinks).
    pub fn conf_integrity() -> SecurityLattice {
        SecurityLattice::product(
            &SecurityLattice::linear(&["Public", "Secret"]),
            &SecurityLattice::linear(&["Trusted", "Untrusted"]),
        )
    }

    /// Resolves a label by name.
    pub fn label(&self, name: &str) -> Option<Label> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Label(i as u32))
    }

    /// The name of a label.
    pub fn name(&self, l: Label) -> &str {
        &self.names[l.index()]
    }

    /// Whether data labeled `a` may flow to a context labeled `b`.
    pub fn leq(&self, a: Label, b: Label) -> bool {
        self.leq[a.index()][b.index()]
    }

    /// Least upper bound.
    pub fn join(&self, a: Label, b: Label) -> Label {
        Label(self.join[a.index()][b.index()])
    }

    /// Greatest lower bound.
    pub fn meet(&self, a: Label, b: Label) -> Label {
        Label(self.meet[a.index()][b.index()])
    }

    /// The least restrictive label (public, trusted).
    pub fn bottom(&self) -> Label {
        self.bottom
    }

    /// The most restrictive label.
    pub fn top(&self) -> Label {
        self.top
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the lattice has no labels (never true for the built-ins).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All labels in interning order.
    pub fn labels(&self) -> impl Iterator<Item = Label> {
        (0..self.names.len() as u32).map(Label)
    }
}

/// A wire- and annotation-friendly description of a [`SecurityLattice`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum LatticeSpec {
    /// `Public < Secret` — the paper's original policy space.
    #[default]
    TwoPoint,
    /// `Low < Med < High < TopSecret`.
    MultiLevel,
    /// Confidentiality × integrity product.
    ConfIntegrity,
    /// A custom total order, least restrictive first.
    Linear(Vec<String>),
}

impl LatticeSpec {
    /// Builds the lattice this spec describes.
    ///
    /// # Panics
    ///
    /// Panics if a [`LatticeSpec::Linear`] spec has no levels.
    pub fn build(&self) -> SecurityLattice {
        match self {
            LatticeSpec::TwoPoint => SecurityLattice::two_point(),
            LatticeSpec::MultiLevel => SecurityLattice::multi_level(),
            LatticeSpec::ConfIntegrity => SecurityLattice::conf_integrity(),
            LatticeSpec::Linear(levels) => {
                let refs: Vec<&str> = levels.iter().map(String::as_str).collect();
                SecurityLattice::linear(&refs)
            }
        }
    }

    /// Parses the name used in a `#![lattice(...)]` module annotation.
    pub fn parse(name: &str) -> Option<LatticeSpec> {
        match name {
            "two_point" => Some(LatticeSpec::TwoPoint),
            "multi_level" => Some(LatticeSpec::MultiLevel),
            "conf_integrity" => Some(LatticeSpec::ConfIntegrity),
            _ => None,
        }
    }

    /// The annotation name of a built-in spec (`linear` for custom chains).
    pub fn kind_name(&self) -> &'static str {
        match self {
            LatticeSpec::TwoPoint => "two_point",
            LatticeSpec::MultiLevel => "multi_level",
            LatticeSpec::ConfIntegrity => "conf_integrity",
            LatticeSpec::Linear(_) => "linear",
        }
    }
}

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

/// A label assignment over a program: which data is sensitive, what each
/// sink is cleared to observe, and which calls are sanctioned release
/// points. All labels are stored by name and resolved (with validation)
/// by [`PolicyChecker::new`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Policy {
    /// The lattice labels are drawn from.
    pub lattice: LatticeSpec,
    /// Fallback label for functions and parameters without an explicit
    /// label. `None` means lattice bottom (unlabeled data is public).
    pub default_label: Option<String>,
    /// `(function, label)`: the function's result carries `label`.
    pub fn_labels: Vec<(String, String)>,
    /// `(function, parameter, label)`.
    pub param_labels: Vec<(String, String, String)>,
    /// `(function, local variable, label)`.
    pub local_labels: Vec<(String, String, String)>,
    /// `(function, clearance)`: calls to `function` may observe data up to
    /// `clearance`; anything above is a violation.
    pub sink_clearances: Vec<(String, String)>,
    /// `(in_function, callee)`: calls from `in_function` to `callee` are
    /// declassification points — their results are relabeled to bottom.
    /// Source-level `#[declassify]` attributes are carried on the MIR body
    /// instead and do not appear here.
    pub declassify: Vec<(String, String)>,
}

impl Policy {
    /// Embeds a legacy two-point [`IfcPolicy`]: secure things become
    /// `Secret`, sinks get clearance `Public`.
    pub fn from_legacy(legacy: &IfcPolicy) -> Policy {
        Policy {
            lattice: LatticeSpec::TwoPoint,
            default_label: None,
            fn_labels: legacy
                .secure_producers
                .iter()
                .map(|f| (f.clone(), "Secret".to_string()))
                .collect(),
            param_labels: legacy
                .secure_params
                .iter()
                .map(|(f, p)| (f.clone(), p.clone(), "Secret".to_string()))
                .collect(),
            local_labels: legacy
                .secure_locals
                .iter()
                .map(|(f, v)| (f.clone(), v.clone(), "Secret".to_string()))
                .collect(),
            sink_clearances: legacy
                .insecure_sinks
                .iter()
                .map(|f| (f.clone(), "Public".to_string()))
                .collect(),
            declassify: Vec::new(),
        }
    }

    /// Derives the naming-convention policy (the legacy default) as a
    /// two-point lattice policy.
    pub fn from_conventions(program: &CompiledProgram) -> Policy {
        Policy::from_legacy(&IfcPolicy::from_conventions(program))
    }

    /// Reads the policy written in the program's own annotations:
    /// `#![lattice(L)]` / `#![default_label(L)]` / `#![module_policy(M, ..)]`
    /// at module level, `#[label(L)]` on functions and parameters,
    /// `#[sink(L)]` on sink functions, `#[module(M)]` for module membership.
    /// A function tagged `#[module(M)]` inherits the module's `label`/`sink`
    /// defaults unless it declares its own. (`#[declassify]` points are
    /// carried on MIR bodies and consulted directly by the checker.)
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnknownLattice`] if the module names a lattice
    /// that does not exist. Unknown *labels* are reported later, by
    /// [`PolicyChecker::new`].
    pub fn from_annotations(program: &CompiledProgram) -> Result<Policy, PolicyError> {
        let lattice = match &program.ast.lattice {
            Some(name) => {
                LatticeSpec::parse(name).ok_or_else(|| PolicyError::UnknownLattice(name.clone()))?
            }
            None => LatticeSpec::TwoPoint,
        };
        let mut policy = Policy {
            lattice,
            default_label: program.ast.default_label.clone(),
            ..Policy::default()
        };
        for sig in &program.signatures {
            if let Some(l) = &sig.label {
                policy.fn_labels.push((sig.name.clone(), l.clone()));
            }
            if let Some(c) = &sig.clearance {
                policy.sink_clearances.push((sig.name.clone(), c.clone()));
            }
            for (i, pl) in sig.param_labels.iter().enumerate() {
                if let Some(l) = pl {
                    let pname = program
                        .body_by_name(&sig.name)
                        .and_then(|b| b.local_decls.get(i + 1))
                        .and_then(|d| d.name.clone())
                        .unwrap_or_default();
                    policy
                        .param_labels
                        .push((sig.name.clone(), pname, l.clone()));
                }
            }
        }
        // Module-policy composition: `#[module(M)]` functions pick up the
        // `#![module_policy(M, ..)]` defaults where they declared nothing
        // themselves. Explicit per-function attributes always win.
        for sig in &program.signatures {
            let Some(m) = &sig.module else { continue };
            let Some(mp) = program.ast.module_policies.iter().find(|p| &p.name == m) else {
                continue;
            };
            if sig.label.is_none() {
                if let Some(l) = &mp.label {
                    policy.fn_labels.push((sig.name.clone(), l.clone()));
                }
            }
            if sig.clearance.is_none() {
                if let Some(c) = &mp.clearance {
                    policy.sink_clearances.push((sig.name.clone(), c.clone()));
                }
            }
        }
        Ok(policy)
    }

    /// Sets the lattice.
    pub fn with_lattice(mut self, spec: LatticeSpec) -> Self {
        self.lattice = spec;
        self
    }

    /// Sets the default label.
    pub fn with_default_label(mut self, label: impl Into<String>) -> Self {
        self.default_label = Some(label.into());
        self
    }

    /// Labels a function's result.
    pub fn with_fn_label(mut self, func: impl Into<String>, label: impl Into<String>) -> Self {
        self.fn_labels.push((func.into(), label.into()));
        self
    }

    /// Labels a parameter.
    pub fn with_param_label(
        mut self,
        func: impl Into<String>,
        param: impl Into<String>,
        label: impl Into<String>,
    ) -> Self {
        self.param_labels
            .push((func.into(), param.into(), label.into()));
        self
    }

    /// Labels a local variable.
    pub fn with_local_label(
        mut self,
        func: impl Into<String>,
        local: impl Into<String>,
        label: impl Into<String>,
    ) -> Self {
        self.local_labels
            .push((func.into(), local.into(), label.into()));
        self
    }

    /// Declares a sink with a clearance.
    pub fn with_sink(mut self, func: impl Into<String>, clearance: impl Into<String>) -> Self {
        self.sink_clearances.push((func.into(), clearance.into()));
        self
    }

    /// Declares a declassification point.
    pub fn with_declassify(
        mut self,
        in_func: impl Into<String>,
        callee: impl Into<String>,
    ) -> Self {
        self.declassify.push((in_func.into(), callee.into()));
        self
    }
}

/// Why a policy could not be checked against a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// A `#![lattice(...)]` annotation names no built-in lattice.
    UnknownLattice(String),
    /// A label name does not exist in the policy's lattice.
    UnknownLabel {
        /// The unresolvable label.
        label: String,
        /// Where the label was used (e.g. `label for function \`f\``).
        context: String,
    },
    /// The policy names a function the program does not define.
    UnknownFunction(String),
    /// The policy labels a parameter the function does not have.
    UnknownParam {
        /// The function named by the policy.
        function: String,
        /// The missing parameter.
        param: String,
    },
    /// The policy labels a local variable the function does not declare.
    UnknownLocal {
        /// The function named by the policy.
        function: String,
        /// The missing local.
        local: String,
    },
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::UnknownLattice(name) => {
                write!(f, "unknown lattice `{name}` (expected `two_point`, `multi_level` or `conf_integrity`)")
            }
            PolicyError::UnknownLabel { label, context } => {
                write!(f, "unknown label `{label}` in {context}")
            }
            PolicyError::UnknownFunction(name) => {
                write!(f, "policy names unknown function `{name}`")
            }
            PolicyError::UnknownParam { function, param } => {
                write!(f, "function `{function}` has no parameter `{param}`")
            }
            PolicyError::UnknownLocal { function, local } => {
                write!(f, "function `{function}` has no local variable `{local}`")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// One step of a flow witness: a program location on the dependency path
/// from a tainted source to the violating sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WitnessStep {
    /// The MIR location.
    pub location: Location,
    /// Its 1-based source line.
    pub line: usize,
}

/// A structured IFC violation: data labeled above a sink's clearance
/// reached the sink, with the backward slice as evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfcDiagnostic {
    /// The function containing the flow.
    pub in_function: String,
    /// The sink that received the data.
    pub sink: String,
    /// Location of the call to the sink.
    pub location: Location,
    /// 1-based source line of the call.
    pub line: usize,
    /// Join of the labels flowing into the sink.
    pub incoming_label: String,
    /// The sink's clearance.
    pub clearance: String,
    /// Descriptions of the offending sources (labels above the clearance),
    /// sorted and deduplicated.
    pub sources: Vec<String>,
    /// The flow witness: the backward slice from the sink call, in
    /// program order.
    pub witness: Vec<WitnessStep>,
}

impl std::fmt::Display for IfcDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "in `{}` (line {}): `{}` data [{}] flows into sink `{}` cleared for `{}`",
            self.in_function,
            self.line,
            self.incoming_label,
            self.sources.join(", "),
            self.sink,
            self.clearance
        )?;
        if !self.witness.is_empty() {
            write!(f, "; witness lines: ")?;
            let mut lines: Vec<usize> = self.witness.iter().map(|w| w.line).collect();
            lines.dedup();
            for (i, line) in lines.iter().enumerate() {
                if i > 0 {
                    write!(f, " -> ")?;
                }
                write!(f, "{line}")?;
            }
        }
        Ok(())
    }
}

/// The result of checking one function against a [`Policy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyReport {
    /// The checked function.
    pub function: String,
    /// All violations found.
    pub diagnostics: Vec<IfcDiagnostic>,
    /// Number of sink calls inspected.
    pub sink_calls_checked: usize,
}

impl PolicyReport {
    /// Whether the function satisfies the policy.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

/// The lattice-based IFC checker: a lint pass over the information flow
/// analysis' dependency rows.
///
/// ```
/// use flowistry_ifc::lattice::{LatticeSpec, Policy, PolicyChecker};
/// let src = "
///     fn fetch_key() -> i32 { return 42; }
///     fn log_line(x: i32) { }
///     fn audit(n: i32) { let k = fetch_key(); if k > n { log_line(1); } }
/// ";
/// let program = flowistry_lang::compile(src).unwrap();
/// let policy = Policy::default()
///     .with_lattice(LatticeSpec::MultiLevel)
///     .with_fn_label("fetch_key", "High")
///     .with_sink("log_line", "Low");
/// let checker = PolicyChecker::new(&program, policy).unwrap();
/// let report = checker.check_function("audit").unwrap();
/// assert!(!report.is_clean()); // the implicit flow through `if k > n`
/// ```
#[derive(Debug)]
pub struct PolicyChecker<'a> {
    program: &'a CompiledProgram,
    policy: Policy,
    lattice: SecurityLattice,
    params: AnalysisParams,
}

impl<'a> PolicyChecker<'a> {
    /// Builds a checker, validating that every name in the policy resolves:
    /// labels against the lattice, functions/params/locals against the
    /// program.
    ///
    /// # Errors
    ///
    /// Returns a descriptive [`PolicyError`] for the first unresolvable
    /// name.
    pub fn new(program: &'a CompiledProgram, policy: Policy) -> Result<Self, PolicyError> {
        let lattice = policy.lattice.build();
        validate_policy(program, &policy, &lattice)?;
        Ok(PolicyChecker {
            program,
            policy,
            lattice,
            params: AnalysisParams::default(),
        })
    }

    /// Overrides the analysis parameters (e.g. to use Whole-program).
    pub fn with_params(mut self, params: AnalysisParams) -> Self {
        self.params = params;
        self
    }

    /// The lattice the policy draws labels from.
    pub fn lattice(&self) -> &SecurityLattice {
        &self.lattice
    }

    /// Checks a single function by name.
    pub fn check_function(&self, name: &str) -> Option<PolicyReport> {
        let func = self.program.func_id(name)?;
        let results = analyze(self.program, func, &self.params);
        Some(self.check_with_results(func, &results))
    }

    /// Checks every function and returns the reports with violations.
    pub fn check_program(&self) -> Vec<PolicyReport> {
        (0..self.program.bodies.len())
            .map(|i| {
                let func = FuncId(i as u32);
                let results = analyze(self.program, func, &self.params);
                self.check_with_results(func, &results)
            })
            .filter(|r| !r.is_clean())
            .collect()
    }

    /// Checks `func` using precomputed analysis results (e.g. served by the
    /// incremental engine).
    pub fn check_with_results(&self, func: FuncId, results: &InfoFlowResults) -> PolicyReport {
        let body = self.program.body(func);
        let lat = &self.lattice;
        let bottom = lat.bottom();
        let default = self
            .policy
            .default_label
            .as_deref()
            .and_then(|n| lat.label(n))
            .unwrap_or(bottom);

        // Label every dependency value the policy speaks about. Entries at
        // bottom are dropped: they can never raise a join nor be named as a
        // source.
        let mut labeled: Vec<(Dep, Label, String)> = Vec::new();
        for arg in body.args() {
            let pname = match &body.local_decl(arg).name {
                Some(n) => n.clone(),
                None => continue,
            };
            let l = self
                .policy
                .param_labels
                .iter()
                .find(|(f, p, _)| f == &body.name && p == &pname)
                .and_then(|(_, _, l)| lat.label(l))
                .unwrap_or(default);
            if l != bottom {
                labeled.push((Dep::Arg(arg), l, format!("parameter `{pname}`")));
            }
        }
        // Calls: the callee's result label, and the set of declassified
        // call locations (from `#[declassify]` or the policy's pairs).
        let mut declassified: Vec<Location> = body.declassified_calls.clone();
        for bb in body.block_ids() {
            let data = body.block(bb);
            let TerminatorKind::Call { func: callee, .. } = &data.terminator().kind else {
                continue;
            };
            let callee_name = &self.program.signature(*callee).name;
            let loc = Location {
                block: bb,
                statement_index: data.statements.len(),
            };
            if self
                .policy
                .declassify
                .iter()
                .any(|(f, c)| f == &body.name && c == callee_name)
            {
                declassified.push(loc);
            }
            let l = self
                .policy
                .fn_labels
                .iter()
                .find(|(f, _)| f == callee_name)
                .and_then(|(_, l)| lat.label(l))
                .unwrap_or(default);
            if l != bottom {
                labeled.push((Dep::Instr(loc), l, format!("call to `{callee_name}`")));
            }
        }
        let labeled_locals: Vec<(Local, Label, String)> = self
            .policy
            .local_labels
            .iter()
            .filter(|(f, _, _)| f == &body.name)
            .filter_map(|(_, vname, lname)| {
                let l = lat.label(lname)?;
                if l == bottom {
                    return None;
                }
                body.local_decls
                    .iter()
                    .position(|d| d.name.as_deref() == Some(vname.as_str()))
                    .map(|i| (Local(i as u32), l, format!("variable `{vname}`")))
            })
            .collect();

        // Everything a declassified call observed is released: the call's
        // own instruction plus the dependencies of its result. This is
        // deliberately coarse — declassification is an audited escape
        // hatch, and releasing the *sources* the call saw matches the
        // "declassify(e)" intuition even when those sources also reach the
        // sink by another path.
        let mut released = DepSet::new();
        for loc in &declassified {
            released.insert(Dep::Instr(*loc));
            if let TerminatorKind::Call { destination, .. } =
                &body.block(loc.block).terminator().kind
            {
                released.extend(results.state_after(*loc).read_conflicts(destination));
            }
        }

        let mut diagnostics = Vec::new();
        let mut sink_calls_checked = 0;
        for bb in body.block_ids() {
            let data = body.block(bb);
            let TerminatorKind::Call {
                func: callee,
                args,
                destination,
                ..
            } = &data.terminator().kind
            else {
                continue;
            };
            let callee_name = self.program.signature(*callee).name.clone();
            let Some(clearance) = self
                .policy
                .sink_clearances
                .iter()
                .find(|(f, _)| f == &callee_name)
                .and_then(|(_, c)| lat.label(c))
            else {
                continue;
            };
            sink_calls_checked += 1;
            let loc = Location {
                block: bb,
                statement_index: data.statements.len(),
            };
            // What flows into the sink: the arguments' dependencies plus
            // the control dependencies of the call site (visible in the
            // destination's row after the call) — same formula as the
            // legacy checker, so the two-point instance agrees with it.
            let before = results.state_before(loc);
            let mut incoming = DepSet::new();
            for arg in args {
                if let Some(place) = arg.place() {
                    incoming.extend(before.read_conflicts(place));
                }
            }
            incoming.extend(results.state_after(loc).read_conflicts(destination));

            let mut incoming_label = bottom;
            let mut sources = Vec::new();
            for (dep, l, desc) in &labeled {
                if incoming.contains(dep) && !released.contains(dep) {
                    incoming_label = lat.join(incoming_label, *l);
                    if !lat.leq(*l, clearance) {
                        sources.push(desc.clone());
                    }
                }
            }
            for (local, l, desc) in &labeled_locals {
                let local_deps = results.exit_deps_of_local(*local);
                if incoming
                    .intersection(&local_deps)
                    .any(|d| !released.contains(d))
                {
                    incoming_label = lat.join(incoming_label, *l);
                    if !lat.leq(*l, clearance) {
                        sources.push(desc.clone());
                    }
                }
            }
            sources.sort();
            sources.dedup();

            if !lat.leq(incoming_label, clearance) {
                // The flow witness: every location whose instruction the
                // sink's inputs depend on (a backward slice in the sense of
                // §5.1), ending at the sink call itself.
                let mut witness_locs: std::collections::BTreeSet<Location> =
                    incoming.iter().filter_map(Dep::location).collect();
                witness_locs.insert(loc);
                let witness: Vec<WitnessStep> = witness_locs
                    .into_iter()
                    .map(|wl| WitnessStep {
                        location: wl,
                        line: line_of(body, &self.program.source, wl),
                    })
                    .collect();
                let span = data.terminator().span;
                diagnostics.push(IfcDiagnostic {
                    in_function: body.name.clone(),
                    sink: callee_name,
                    location: loc,
                    line: span.line_of(&self.program.source),
                    incoming_label: lat.name(incoming_label).to_string(),
                    clearance: lat.name(clearance).to_string(),
                    sources,
                    witness,
                });
            }
        }

        PolicyReport {
            function: body.name.clone(),
            diagnostics,
            sink_calls_checked,
        }
    }
}

/// The 1-based source line of a MIR location.
fn line_of(body: &Body, source: &str, loc: Location) -> usize {
    let span = match body.stmt_at(loc) {
        Some(stmt) => stmt.span,
        None => body.block(loc.block).terminator().span,
    };
    span.line_of(source)
}

/// Validates every name a policy mentions, shared by [`PolicyChecker::new`]
/// and the legacy checker's strict entry points.
pub(crate) fn validate_policy(
    program: &CompiledProgram,
    policy: &Policy,
    lattice: &SecurityLattice,
) -> Result<(), PolicyError> {
    let check_label = |label: &str, context: String| -> Result<(), PolicyError> {
        if lattice.label(label).is_none() {
            return Err(PolicyError::UnknownLabel {
                label: label.to_string(),
                context,
            });
        }
        Ok(())
    };
    let find_body = |name: &str| -> Result<&Body, PolicyError> {
        program
            .body_by_name(name)
            .ok_or_else(|| PolicyError::UnknownFunction(name.to_string()))
    };

    if let Some(l) = &policy.default_label {
        check_label(l, "the default label".to_string())?;
    }
    for (f, l) in &policy.fn_labels {
        find_body(f)?;
        check_label(l, format!("label for function `{f}`"))?;
    }
    for (f, p, l) in &policy.param_labels {
        let body = find_body(f)?;
        if !body
            .args()
            .any(|a| body.local_decl(a).name.as_deref() == Some(p.as_str()))
        {
            return Err(PolicyError::UnknownParam {
                function: f.clone(),
                param: p.clone(),
            });
        }
        check_label(l, format!("label for parameter `{p}` of `{f}`"))?;
    }
    for (f, v, l) in &policy.local_labels {
        let body = find_body(f)?;
        if !body
            .local_decls
            .iter()
            .any(|d| d.name.as_deref() == Some(v.as_str()))
        {
            return Err(PolicyError::UnknownLocal {
                function: f.clone(),
                local: v.clone(),
            });
        }
        check_label(l, format!("label for variable `{v}` in `{f}`"))?;
    }
    for (f, c) in &policy.sink_clearances {
        find_body(f)?;
        check_label(c, format!("clearance of sink `{f}`"))?;
    }
    for (f, c) in &policy.declassify {
        find_body(f)?;
        find_body(c)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---------------- lattice algebra ----------------

    #[test]
    fn two_point_orders_public_below_secret() {
        let lat = SecurityLattice::two_point();
        let public = lat.label("Public").unwrap();
        let secret = lat.label("Secret").unwrap();
        assert_eq!(lat.bottom(), public);
        assert_eq!(lat.top(), secret);
        assert!(lat.leq(public, secret));
        assert!(!lat.leq(secret, public));
        assert_eq!(lat.join(public, secret), secret);
        assert_eq!(lat.meet(public, secret), public);
        assert_eq!(lat.name(secret), "Secret");
        assert_eq!(lat.len(), 2);
        assert!(!lat.is_empty());
    }

    #[test]
    fn multi_level_is_a_chain() {
        let lat = SecurityLattice::multi_level();
        let names: Vec<&str> = lat.labels().map(|l| lat.name(l)).collect();
        assert_eq!(names, ["Low", "Med", "High", "TopSecret"]);
        let med = lat.label("Med").unwrap();
        let high = lat.label("High").unwrap();
        assert!(lat.leq(med, high));
        assert!(!lat.leq(high, med));
        assert_eq!(lat.join(med, high), high);
        assert_eq!(lat.meet(med, high), med);
        assert_eq!(lat.name(lat.top()), "TopSecret");
    }

    #[test]
    fn product_joins_componentwise() {
        let lat = SecurityLattice::conf_integrity();
        assert_eq!(lat.len(), 4);
        let st = lat.label("Secret_Trusted").unwrap();
        let pu = lat.label("Public_Untrusted").unwrap();
        // Incomparable: secrecy vs integrity.
        assert!(!lat.leq(st, pu));
        assert!(!lat.leq(pu, st));
        assert_eq!(lat.name(lat.join(st, pu)), "Secret_Untrusted");
        assert_eq!(lat.name(lat.meet(st, pu)), "Public_Trusted");
        assert_eq!(lat.name(lat.bottom()), "Public_Trusted");
        assert_eq!(lat.name(lat.top()), "Secret_Untrusted");
    }

    #[test]
    fn lattice_laws_hold_on_all_builtins() {
        for lat in [
            SecurityLattice::two_point(),
            SecurityLattice::multi_level(),
            SecurityLattice::conf_integrity(),
        ] {
            for a in lat.labels() {
                assert!(lat.leq(lat.bottom(), a));
                assert!(lat.leq(a, lat.top()));
                for b in lat.labels() {
                    // Commutativity and the connecting law a ≤ b ⇔ a⊔b = b.
                    assert_eq!(lat.join(a, b), lat.join(b, a));
                    assert_eq!(lat.meet(a, b), lat.meet(b, a));
                    assert_eq!(lat.leq(a, b), lat.join(a, b) == b);
                    assert_eq!(lat.leq(a, b), lat.meet(a, b) == a);
                }
            }
        }
    }

    #[test]
    fn spec_roundtrips_names() {
        for spec in [
            LatticeSpec::TwoPoint,
            LatticeSpec::MultiLevel,
            LatticeSpec::ConfIntegrity,
        ] {
            assert_eq!(LatticeSpec::parse(spec.kind_name()), Some(spec.clone()));
            assert!(!spec.build().is_empty());
        }
        assert_eq!(LatticeSpec::parse("diamond"), None);
        let linear = LatticeSpec::Linear(vec!["A".into(), "B".into()]);
        assert_eq!(linear.kind_name(), "linear");
        assert_eq!(linear.build().len(), 2);
    }

    // ---------------- policy checking ----------------

    const MULTI_LEVEL_PROGRAM: &str = "
        fn fetch_secret() -> i32 { return 7; }
        fn fetch_config() -> i32 { return 1; }
        fn emit_low(x: i32) { }
        fn emit_high(x: i32) { }
        fn main_like() {
            let s = fetch_secret();
            let c = fetch_config();
            emit_low(c);
            emit_high(s);
            emit_low(s);
        }
    ";

    fn multi_level_policy() -> Policy {
        Policy::default()
            .with_lattice(LatticeSpec::MultiLevel)
            .with_fn_label("fetch_secret", "High")
            .with_fn_label("fetch_config", "Low")
            .with_sink("emit_low", "Low")
            .with_sink("emit_high", "High")
    }

    #[test]
    fn multi_level_flags_only_above_clearance_flows() {
        let prog = flowistry_lang::compile(MULTI_LEVEL_PROGRAM).unwrap();
        let checker = PolicyChecker::new(&prog, multi_level_policy()).unwrap();
        let report = checker.check_function("main_like").unwrap();
        assert_eq!(report.sink_calls_checked, 3);
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        let d = &report.diagnostics[0];
        assert_eq!(d.sink, "emit_low");
        assert_eq!(d.incoming_label, "High");
        assert_eq!(d.clearance, "Low");
        assert_eq!(d.sources, vec!["call to `fetch_secret`".to_string()]);
    }

    #[test]
    fn witness_traces_back_to_the_source() {
        let prog = flowistry_lang::compile(MULTI_LEVEL_PROGRAM).unwrap();
        let checker = PolicyChecker::new(&prog, multi_level_policy()).unwrap();
        let report = checker.check_function("main_like").unwrap();
        let d = &report.diagnostics[0];
        assert!(!d.witness.is_empty());
        // The witness must include the `fetch_secret` call (line 2 of the
        // function body, line 7 of the source).
        let lines: Vec<usize> = d.witness.iter().map(|w| w.line).collect();
        assert!(lines.contains(&7), "witness lines: {lines:?}");
        assert!(d.to_string().contains("witness lines"));
    }

    #[test]
    fn declassify_via_policy_silences_the_flow() {
        let src = "
            fn fetch_secret() -> i32 { return 7; }
            fn hash(x: i32) -> i32 { return x * 31; }
            fn emit_low(x: i32) { }
            fn main_like() {
                let s = fetch_secret();
                let h = hash(s);
                emit_low(h);
            }
        ";
        let prog = flowistry_lang::compile(src).unwrap();
        let policy = Policy::default()
            .with_lattice(LatticeSpec::MultiLevel)
            .with_fn_label("fetch_secret", "High")
            .with_sink("emit_low", "Low");
        let checker = PolicyChecker::new(&prog, policy.clone()).unwrap();
        assert!(!checker.check_function("main_like").unwrap().is_clean());

        let declassified = policy.with_declassify("main_like", "hash");
        let checker = PolicyChecker::new(&prog, declassified).unwrap();
        let report = checker.check_function("main_like").unwrap();
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn declassify_annotation_silences_the_flow() {
        let src = "
            fn fetch_secret() -> i32 { return 7; }
            fn hash(x: i32) -> i32 { return x * 31; }
            fn emit_low(x: i32) { }
            fn main_like() {
                let s = fetch_secret();
                #[declassify] let h = hash(s);
                emit_low(h);
            }
        ";
        let prog = flowistry_lang::compile(src).unwrap();
        assert_eq!(
            prog.body_by_name("main_like")
                .unwrap()
                .declassified_calls
                .len(),
            1
        );
        let policy = Policy::default()
            .with_lattice(LatticeSpec::MultiLevel)
            .with_fn_label("fetch_secret", "High")
            .with_sink("emit_low", "Low");
        let checker = PolicyChecker::new(&prog, policy).unwrap();
        let report = checker.check_function("main_like").unwrap();
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn annotations_build_the_policy() {
        let src = "
            #![lattice(multi_level)]
            #[label(High)]
            fn fetch_secret() -> i32 { return 7; }
            #[sink(Low)]
            fn emit_low(x: i32) { }
            fn relay(#[label(Med)] m: i32) {
                let s = fetch_secret();
                emit_low(m);
            }
        ";
        let prog = flowistry_lang::compile(src).unwrap();
        let policy = Policy::from_annotations(&prog).unwrap();
        assert_eq!(policy.lattice, LatticeSpec::MultiLevel);
        assert!(policy
            .fn_labels
            .contains(&("fetch_secret".into(), "High".into())));
        assert!(policy
            .sink_clearances
            .contains(&("emit_low".into(), "Low".into())));
        assert!(policy
            .param_labels
            .contains(&("relay".into(), "m".into(), "Med".into())));
        let checker = PolicyChecker::new(&prog, policy).unwrap();
        let report = checker.check_function("relay").unwrap();
        // `m` is Med, the sink is cleared for Low only.
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].incoming_label, "Med");
        assert_eq!(
            report.diagnostics[0].sources,
            vec!["parameter `m`".to_string()]
        );
    }

    #[test]
    fn module_policy_defaults_compose_with_annotations() {
        let src = "
            #![lattice(multi_level)]
            #![module_policy(vault, label(High))]
            #![module_policy(console, sink(Low))]
            #[module(vault)]
            fn fetch_key() -> i32 { return 7; }
            #[module(vault)] #[label(Med)]
            fn fetch_hint() -> i32 { return 1; }
            #[module(console)]
            fn emit(x: i32) { }
            fn main_like() {
                let k = fetch_key();
                emit(k);
            }
        ";
        let prog = flowistry_lang::compile(src).unwrap();
        let policy = Policy::from_annotations(&prog).unwrap();
        // Module default applies where the function declared nothing...
        assert!(policy
            .fn_labels
            .contains(&("fetch_key".into(), "High".into())));
        assert!(policy
            .sink_clearances
            .contains(&("emit".into(), "Low".into())));
        // ...but an explicit `#[label]` wins over the module default.
        assert!(policy
            .fn_labels
            .contains(&("fetch_hint".into(), "Med".into())));
        assert!(!policy
            .fn_labels
            .contains(&("fetch_hint".into(), "High".into())));
        let checker = PolicyChecker::new(&prog, policy).unwrap();
        let report = checker.check_function("main_like").unwrap();
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].incoming_label, "High");
    }

    #[test]
    fn module_without_policy_is_inert() {
        let src = "#[module(misc)] fn f() -> i32 { return 1; }";
        let prog = flowistry_lang::compile(src).unwrap();
        let policy = Policy::from_annotations(&prog).unwrap();
        assert!(policy.fn_labels.is_empty());
        assert!(policy.sink_clearances.is_empty());
    }

    #[test]
    fn unknown_module_lattice_is_an_error() {
        let src = "#![lattice(diamond)] fn f() { }";
        let prog = flowistry_lang::compile(src).unwrap();
        let err = Policy::from_annotations(&prog).unwrap_err();
        assert!(matches!(err, PolicyError::UnknownLattice(ref n) if n == "diamond"));
        assert!(err.to_string().contains("diamond"));
    }

    #[test]
    fn default_label_applies_to_unlabeled_data() {
        let src = "
            fn source() -> i32 { return 1; }
            fn emit(x: i32) { }
            fn main_like() { let v = source(); emit(v); }
        ";
        let prog = flowistry_lang::compile(src).unwrap();
        let policy = Policy::default()
            .with_lattice(LatticeSpec::MultiLevel)
            .with_default_label("High")
            .with_sink("emit", "Low");
        let checker = PolicyChecker::new(&prog, policy).unwrap();
        let report = checker.check_function("main_like").unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.diagnostics[0].incoming_label, "High");
    }

    #[test]
    fn conf_integrity_catches_untrusted_into_trusted_sink() {
        let src = "
            fn read_input() -> i32 { return 3; }
            fn exec(x: i32) { }
            fn main_like() { let v = read_input(); exec(v); }
        ";
        let prog = flowistry_lang::compile(src).unwrap();
        let policy = Policy::default()
            .with_lattice(LatticeSpec::ConfIntegrity)
            .with_fn_label("read_input", "Public_Untrusted")
            .with_sink("exec", "Secret_Trusted");
        let checker = PolicyChecker::new(&prog, policy).unwrap();
        let report = checker.check_function("main_like").unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.diagnostics[0].incoming_label, "Public_Untrusted");
    }

    // ---------------- validation errors ----------------

    #[test]
    fn unknown_names_are_descriptive_errors() {
        let prog = flowistry_lang::compile("fn f(x: i32) { let y = x; }").unwrap();
        let cases: Vec<(Policy, &str)> = vec![
            (Policy::default().with_fn_label("ghost", "Secret"), "ghost"),
            (Policy::default().with_sink("ghost", "Public"), "ghost"),
            (
                Policy::default().with_param_label("f", "z", "Secret"),
                "`z`",
            ),
            (
                Policy::default().with_local_label("f", "w", "Secret"),
                "`w`",
            ),
            (Policy::default().with_fn_label("f", "Purple"), "Purple"),
            (Policy::default().with_default_label("Purple"), "Purple"),
            (Policy::default().with_declassify("f", "ghost"), "ghost"),
        ];
        for (policy, needle) in cases {
            let err = PolicyChecker::new(&prog, policy).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "message `{msg}` missing `{needle}`");
        }
    }

    #[test]
    fn valid_policy_constructs() {
        let prog = flowistry_lang::compile("fn f(x: i32) { let y = x; }").unwrap();
        let policy = Policy::default()
            .with_param_label("f", "x", "Secret")
            .with_local_label("f", "y", "Secret")
            .with_sink("f", "Public");
        assert!(PolicyChecker::new(&prog, policy).is_ok());
    }

    // ---------------- legacy embedding ----------------

    #[test]
    fn legacy_embedding_matches_legacy_checker() {
        let src = "
            fn read_password() -> i32 { return 1234; }
            fn insecure_print(x: i32) { }
            fn check(input: i32) -> bool {
                let password = read_password();
                if input == password { insecure_print(1); return true; }
                return false;
            }
        ";
        let prog = flowistry_lang::compile(src).unwrap();
        let legacy_policy = IfcPolicy::from_conventions(&prog);
        let legacy = crate::IfcChecker::new(&prog, legacy_policy.clone());
        let modern = PolicyChecker::new(&prog, Policy::from_legacy(&legacy_policy)).unwrap();
        for sig in &prog.signatures {
            let old = legacy.check_function(&sig.name).unwrap();
            let new = modern.check_function(&sig.name).unwrap();
            assert_eq!(old.sink_calls_checked, new.sink_calls_checked);
            assert_eq!(old.violations.len(), new.diagnostics.len());
            for (v, d) in old.violations.iter().zip(&new.diagnostics) {
                assert_eq!(v.in_function, d.in_function);
                assert_eq!(v.sink, d.sink);
                assert_eq!(v.location, d.location);
                assert_eq!(v.line, d.line);
                assert_eq!(v.sources, d.sources);
            }
        }
    }
}
