//! # flowistry-ifc: an information flow control checker
//!
//! The paper's second application (§6, Figure 5b) is an IFC checker: a
//! library marks some data as `Secure` and some operations as `Insecure`,
//! and a compiler plugin uses Flowistry to flag any flow from secure data to
//! an insecure operation — including *implicit* flows through control flow,
//! as in the paper's example where `insecure_print` is called under a branch
//! that read a password.
//!
//! Rox has no attribute system, so the policy is provided programmatically
//! (or parsed from naming conventions with [`IfcPolicy::from_conventions`]):
//! secure *sources* are parameters, locals, or producer functions; insecure
//! *sinks* are functions.
//!
//! ```
//! use flowistry_ifc::{IfcChecker, IfcPolicy};
//! let src = "
//!     fn read_password() -> i32 { return 1234; }
//!     fn insecure_print(x: i32) { }
//!     fn main_like() {
//!         let password = read_password();
//!         if password == 1234 { insecure_print(1); }
//!     }
//! ";
//! let program = flowistry_lang::compile(src).unwrap();
//! let policy = IfcPolicy::from_conventions(&program);
//! let checker = IfcChecker::new(&program, policy);
//! let report = checker.check_function("main_like").unwrap();
//! assert!(!report.violations.is_empty()); // the implicit flow is flagged
//! ```

#![warn(missing_docs)]

pub mod lattice;

pub use lattice::{
    IfcDiagnostic, Label, LatticeSpec, Policy, PolicyChecker, PolicyError, PolicyReport,
    SecurityLattice, WitnessStep,
};

use flowistry_core::{analyze, AnalysisParams, Dep, DepSet, ThetaExt};
use flowistry_lang::mir::{Local, Location, TerminatorKind};
use flowistry_lang::types::FuncId;
use flowistry_lang::CompiledProgram;

/// Whether an identifier names sensitive data under the naming conventions.
///
/// The old heuristic used raw substring matching, which flagged `secretary`
/// and `not_secret_len`. Sensitivity now requires `password` or `secret` to
/// appear as the **first or last** `_`-separated segment (or the whole
/// name), or the `secure_` prefix: `read_password`, `secret_key` and
/// `my_secret` match; `secretary`, `passwords` and `not_secret_len` do not.
fn is_sensitive_name(name: &str) -> bool {
    for seg in ["password", "secret"] {
        if name == seg || name.starts_with(&format!("{seg}_")) || name.ends_with(&format!("_{seg}"))
        {
            return true;
        }
    }
    name.starts_with("secure_")
}

/// What counts as secure data and insecure operations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IfcPolicy {
    /// Function parameters holding secure data, as `(function, parameter)`.
    pub secure_params: Vec<(String, String)>,
    /// Local variables holding secure data, as `(function, variable)`.
    pub secure_locals: Vec<(String, String)>,
    /// Functions whose return value is secure (e.g. `read_password`).
    pub secure_producers: Vec<String>,
    /// Functions that must not observe secure data (e.g. `insecure_print`).
    pub insecure_sinks: Vec<String>,
}

impl IfcPolicy {
    /// Builds a policy from naming conventions, the closest analogue of the
    /// paper's `Secure`/`Insecure` traits that Rox supports: functions whose
    /// name starts with `insecure_` are sinks, and functions or variables
    /// whose name has `password`/`secret` as its first or last identifier
    /// segment (or the `secure_` prefix) are secure. Substrings inside a
    /// segment do not count: `secretary` and `not_secret_len` are public.
    pub fn from_conventions(program: &CompiledProgram) -> IfcPolicy {
        let mut policy = IfcPolicy::default();
        for sig in &program.signatures {
            if sig.name.starts_with("insecure_") {
                policy.insecure_sinks.push(sig.name.clone());
            }
            if is_sensitive_name(&sig.name) {
                policy.secure_producers.push(sig.name.clone());
            }
        }
        for body in &program.bodies {
            for decl in &body.local_decls {
                if let Some(name) = &decl.name {
                    if is_sensitive_name(name) {
                        policy.secure_locals.push((body.name.clone(), name.clone()));
                    }
                }
            }
        }
        policy
    }

    /// Adds an insecure sink function.
    pub fn with_sink(mut self, name: impl Into<String>) -> Self {
        self.insecure_sinks.push(name.into());
        self
    }

    /// Adds a secure parameter.
    pub fn with_secure_param(mut self, func: impl Into<String>, param: impl Into<String>) -> Self {
        self.secure_params.push((func.into(), param.into()));
        self
    }

    /// Adds a secure producer function.
    pub fn with_secure_producer(mut self, name: impl Into<String>) -> Self {
        self.secure_producers.push(name.into());
        self
    }
}

/// One detected secure→insecure flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The function containing the flow.
    pub in_function: String,
    /// The insecure sink that receives the data.
    pub sink: String,
    /// Location of the call to the sink.
    pub location: Location,
    /// 1-based source line of the call.
    pub line: usize,
    /// Description of the secure sources involved.
    pub sources: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "in `{}` (line {}): secure data [{}] flows into insecure sink `{}`",
            self.in_function,
            self.line,
            self.sources.join(", "),
            self.sink
        )
    }
}

/// The result of checking one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfcReport {
    /// The checked function.
    pub function: String,
    /// All secure→insecure flows found.
    pub violations: Vec<Violation>,
    /// Number of sink calls inspected.
    pub sink_calls_checked: usize,
}

impl IfcReport {
    /// Whether the function is free of secure→insecure flows.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The IFC checker: runs the information flow analysis and matches its
/// dependency sets against an [`IfcPolicy`].
pub struct IfcChecker<'a> {
    program: &'a CompiledProgram,
    policy: IfcPolicy,
    params: AnalysisParams,
}

impl<'a> IfcChecker<'a> {
    /// Creates a checker with the default (modular) analysis parameters.
    pub fn new(program: &'a CompiledProgram, policy: IfcPolicy) -> Self {
        IfcChecker {
            program,
            policy,
            params: AnalysisParams::default(),
        }
    }

    /// Overrides the analysis parameters (e.g. to use Whole-program).
    pub fn with_params(mut self, params: AnalysisParams) -> Self {
        self.params = params;
        self
    }

    /// Validates that every function, parameter and local named by the
    /// policy actually exists in the program.
    ///
    /// # Errors
    ///
    /// Returns a descriptive [`PolicyError`] for the first name that does
    /// not resolve — a misspelled policy entry would otherwise be silently
    /// ignored and the check would pass vacuously.
    pub fn validate(&self) -> Result<(), PolicyError> {
        lattice::validate_policy(
            self.program,
            &Policy::from_legacy(&self.policy),
            &SecurityLattice::two_point(),
        )
    }

    /// Checks a single function by name.
    pub fn check_function(&self, name: &str) -> Option<IfcReport> {
        let func = self.program.func_id(name)?;
        Some(self.check(func))
    }

    /// Checks every function in the program and returns the reports that
    /// contain violations.
    pub fn check_program(&self) -> Vec<IfcReport> {
        (0..self.program.bodies.len())
            .map(|i| self.check(FuncId(i as u32)))
            .filter(|r| !r.is_clean())
            .collect()
    }

    /// Like [`IfcChecker::check_program`], but first [`validate`]s the
    /// policy so that entries naming nonexistent functions, parameters or
    /// locals are reported instead of silently ignored.
    ///
    /// # Errors
    ///
    /// Returns the first [`PolicyError`] from validation.
    ///
    /// [`validate`]: IfcChecker::validate
    pub fn check_program_strict(&self) -> Result<Vec<IfcReport>, PolicyError> {
        self.validate()?;
        Ok(self.check_program())
    }

    fn check(&self, func: FuncId) -> IfcReport {
        let results = analyze(self.program, func, &self.params);
        self.check_with_results(func, &results)
    }

    /// Checks `func` against the policy using precomputed analysis results
    /// (e.g. served by the incremental analysis engine) instead of running
    /// the analysis here.
    pub fn check_with_results(
        &self,
        func: FuncId,
        results: &flowistry_core::InfoFlowResults,
    ) -> IfcReport {
        let body = self.program.body(func);

        // Identify the secure sources of this function as dependency values.
        let mut secure_deps: Vec<(Dep, String)> = Vec::new();
        for (fname, pname) in &self.policy.secure_params {
            if fname == &body.name {
                for (i, arg) in body.args().enumerate() {
                    if body.local_decl(arg).name.as_deref() == Some(pname.as_str()) {
                        secure_deps.push((Dep::Arg(arg), format!("parameter `{pname}`")));
                        let _ = i;
                    }
                }
            }
        }
        // Secure locals: every location that assigns into them.
        let secure_locals: Vec<(Local, String)> = self
            .policy
            .secure_locals
            .iter()
            .filter(|(fname, _)| fname == &body.name)
            .filter_map(|(_, vname)| {
                body.local_decls
                    .iter()
                    .position(|d| d.name.as_deref() == Some(vname.as_str()))
                    .map(|i| (Local(i as u32), format!("variable `{vname}`")))
            })
            .collect();
        // Secure producers: the locations of calls to them.
        for bb in body.block_ids() {
            let data = body.block(bb);
            if let TerminatorKind::Call { func: callee, .. } = &data.terminator().kind {
                let callee_name = &self.program.signature(*callee).name;
                if self.policy.secure_producers.contains(callee_name) {
                    let loc = Location {
                        block: bb,
                        statement_index: data.statements.len(),
                    };
                    secure_deps.push((Dep::Instr(loc), format!("call to `{callee_name}`")));
                }
            }
        }

        let describe = |deps: &DepSet| -> Vec<String> {
            let mut out = Vec::new();
            for (dep, desc) in &secure_deps {
                if deps.contains(dep) {
                    out.push(desc.clone());
                }
            }
            for (local, desc) in &secure_locals {
                // The secure local's value flows here if any dependency is a
                // location that assigned the secure local, approximated by:
                // the local's own exit dependencies intersect `deps`.
                let local_deps = results.exit_deps_of_local(*local);
                if deps.intersection(&local_deps).next().is_some() {
                    out.push(desc.clone());
                }
            }
            out.sort();
            out.dedup();
            out
        };

        // Inspect every call to an insecure sink.
        let mut violations = Vec::new();
        let mut sink_calls_checked = 0;
        for bb in body.block_ids() {
            let data = body.block(bb);
            let TerminatorKind::Call {
                func: callee, args, ..
            } = &data.terminator().kind
            else {
                continue;
            };
            let callee_name = self.program.signature(*callee).name.clone();
            if !self.policy.insecure_sinks.contains(&callee_name) {
                continue;
            }
            sink_calls_checked += 1;
            let loc = Location {
                block: bb,
                statement_index: data.statements.len(),
            };
            // What flows into the sink: the arguments' dependencies plus the
            // control dependencies of the call site — both are visible in the
            // state *after* executing the call, where the destination's
            // dependency set was just written. We recompute conservatively
            // from the state before the call.
            let before = results.state_before(loc);
            let mut incoming = DepSet::new();
            for arg in args {
                if let Some(place) = arg.place() {
                    incoming.extend(before.read_conflicts(place));
                }
            }
            // Control context: the dependencies of the destination after the
            // call include the control κ; reuse them.
            if let TerminatorKind::Call { destination, .. } = &data.terminator().kind {
                incoming.extend(results.state_after(loc).read_conflicts(destination));
            }

            let sources = describe(&incoming);
            if !sources.is_empty() {
                let span = data.terminator().span;
                violations.push(Violation {
                    in_function: body.name.clone(),
                    sink: callee_name,
                    location: loc,
                    line: span.line_of(&self.program.source),
                    sources,
                });
            }
        }

        IfcReport {
            function: body.name.clone(),
            violations,
            sink_calls_checked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PASSWORD_PROGRAM: &str = "
        fn read_password() -> i32 { return 1234; }
        fn insecure_print(x: i32) { }
        fn check(input: i32) -> bool {
            let password = read_password();
            if input == password { insecure_print(1); return true; }
            return false;
        }
        fn safe(input: i32) {
            insecure_print(input);
        }
    ";

    fn checked(func: &str) -> IfcReport {
        let prog = flowistry_lang::compile(PASSWORD_PROGRAM).unwrap();
        let policy = IfcPolicy::from_conventions(&prog);
        IfcChecker::new(&prog, policy).check_function(func).unwrap()
    }

    #[test]
    fn implicit_flow_through_branch_is_flagged() {
        let report = checked("check");
        assert!(!report.is_clean(), "expected a violation");
        assert_eq!(report.sink_calls_checked, 1);
        let v = &report.violations[0];
        assert_eq!(v.sink, "insecure_print");
        assert!(v.to_string().contains("insecure_print"));
        assert!(
            v.sources
                .iter()
                .any(|s| s.contains("password") || s.contains("read_password")),
            "sources: {:?}",
            v.sources
        );
    }

    #[test]
    fn non_secret_data_is_not_flagged() {
        let report = checked("safe");
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.sink_calls_checked, 1);
    }

    #[test]
    fn check_program_reports_only_offending_functions() {
        let prog = flowistry_lang::compile(PASSWORD_PROGRAM).unwrap();
        let policy = IfcPolicy::from_conventions(&prog);
        let reports = IfcChecker::new(&prog, policy).check_program();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].function, "check");
    }

    #[test]
    fn explicit_flow_of_secure_parameter_is_flagged() {
        let src = "
            fn insecure_send(x: i32) { }
            fn handler(token: i32, other: i32) {
                insecure_send(token + 1);
            }
        ";
        let prog = flowistry_lang::compile(src).unwrap();
        let policy = IfcPolicy::default()
            .with_sink("insecure_send")
            .with_secure_param("handler", "token");
        let report = IfcChecker::new(&prog, policy)
            .check_function("handler")
            .unwrap();
        assert!(!report.is_clean());
    }

    #[test]
    fn unrelated_secure_parameter_is_not_flagged() {
        let src = "
            fn insecure_send(x: i32) { }
            fn handler(token: i32, other: i32) {
                insecure_send(other);
            }
        ";
        let prog = flowistry_lang::compile(src).unwrap();
        let policy = IfcPolicy::default()
            .with_sink("insecure_send")
            .with_secure_param("handler", "token");
        let report = IfcChecker::new(&prog, policy)
            .check_function("handler")
            .unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    #[test]
    fn flows_laundered_through_mutation_are_caught() {
        let src = "
            fn insecure_send(x: i32) { }
            fn get_secret() -> i32 { return 99; }
            fn launder() {
                let secret_value = get_secret();
                let mut copy = 0;
                let p = &mut copy;
                *p = secret_value;
                insecure_send(copy);
            }
        ";
        let prog = flowistry_lang::compile(src).unwrap();
        let policy = IfcPolicy::default()
            .with_sink("insecure_send")
            .with_secure_producer("get_secret");
        let report = IfcChecker::new(&prog, policy)
            .check_function("launder")
            .unwrap();
        assert!(!report.is_clean());
    }

    #[test]
    fn conventions_detect_names() {
        let prog = flowistry_lang::compile(PASSWORD_PROGRAM).unwrap();
        let policy = IfcPolicy::from_conventions(&prog);
        assert!(policy
            .insecure_sinks
            .contains(&"insecure_print".to_string()));
        assert!(policy
            .secure_producers
            .contains(&"read_password".to_string()));
        assert!(policy
            .secure_locals
            .iter()
            .any(|(f, v)| f == "check" && v == "password"));
    }

    #[test]
    fn sensitive_name_matching_is_segment_based() {
        for name in [
            "password",
            "secret",
            "read_password",
            "secret_key",
            "my_secret",
            "secure_token",
            "password_hash",
        ] {
            assert!(is_sensitive_name(name), "`{name}` should be sensitive");
        }
        for name in [
            "secretary",
            "not_secret_len",
            "passwords",
            "top_secretive",
            "insecure_print",
            "unsecure_x",
        ] {
            assert!(!is_sensitive_name(name), "`{name}` should not be sensitive");
        }
    }

    #[test]
    fn conventions_do_not_flag_lookalike_names() {
        let src = "
            fn secretary() -> i32 { return 1; }
            fn insecure_print(x: i32) { }
            fn office() {
                let not_secret_len = secretary();
                insecure_print(not_secret_len);
            }
        ";
        let prog = flowistry_lang::compile(src).unwrap();
        let policy = IfcPolicy::from_conventions(&prog);
        assert!(policy.secure_producers.is_empty(), "{policy:?}");
        assert!(policy.secure_locals.is_empty(), "{policy:?}");
        let reports = IfcChecker::new(&prog, policy).check_program();
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn validate_rejects_unknown_policy_names() {
        let prog = flowistry_lang::compile("fn f(x: i32) { }").unwrap();
        let checker = IfcChecker::new(
            &prog,
            IfcPolicy::default().with_secure_producer("read_ghost"),
        );
        let err = checker.check_program_strict().unwrap_err();
        assert!(err.to_string().contains("read_ghost"), "{err}");

        let checker = IfcChecker::new(
            &prog,
            IfcPolicy::default().with_secure_param("f", "missing"),
        );
        let err = checker.validate().unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");

        let checker = IfcChecker::new(&prog, IfcPolicy::default().with_sink("f"));
        assert!(checker.check_program_strict().is_ok());
    }

    #[test]
    fn missing_function_returns_none() {
        let prog = flowistry_lang::compile("fn f() {}").unwrap();
        let checker = IfcChecker::new(&prog, IfcPolicy::default());
        assert!(checker.check_function("ghost").is_none());
    }

    #[test]
    fn whole_program_params_can_be_used() {
        let prog = flowistry_lang::compile(PASSWORD_PROGRAM).unwrap();
        let policy = IfcPolicy::from_conventions(&prog);
        let params = AnalysisParams::for_condition(flowistry_core::Condition::WHOLE_PROGRAM);
        let report = IfcChecker::new(&prog, policy)
            .with_params(params)
            .check_function("check")
            .unwrap();
        assert!(!report.is_clean());
    }
}
