//! The program slicer application (Figure 5a): select a variable, see the
//! lines relevant to it highlighted and the rest faded; compute a forward
//! slice to find everything a flag influences before removing it.
//!
//! Run with: `cargo run --example slicer_demo`

use flowistry::prelude::*;

/// An analogue of the file-writing example in Figure 5a: `write_all` mutates
/// the file (so it is in the slice on `f`), `metadata` only reads it (so it
/// is not), and a `timing` flag controls logging code that a forward slice
/// can find and remove.
const PROGRAM: &str = "\
fn write_all(f: &mut i32, data: i32) { *f = *f + data; }
fn metadata(f: &i32) -> i32 { return *f * 2; }
fn now() -> i32 { return 12345; }
fn process(input: i32, timing: bool) -> i32 {
    let mut f = 0;
    write_all(&mut f, input);
    let meta = metadata(&f);
    let start = now();
    let mut elapsed = 0;
    if timing { elapsed = now() - start; }
    write_all(&mut f, meta);
    return f;
}";

fn main() {
    let program = compile(PROGRAM).expect("the example program compiles");
    let func = program.func_id("process").expect("process exists");
    let slicer = Slicer::new(&program, func, AnalysisParams::default());

    println!("=== backward slice on `f` (the file) ===\n");
    let slice = slicer
        .backward_slice_of_var("f")
        .expect("variable f exists");
    println!("{}\n", slice.render(&program.source));
    println!("(lines marked ▶ are relevant to `f`; note that the timing code is faded out)\n");

    println!("=== forward slice on `start` (the timing code) ===\n");
    let forward = slicer
        .forward_slice_of_var("start")
        .expect("variable start exists");
    println!("{}\n", forward.render(&program.source));
    println!("(everything the timing value influences — the code a user could comment out)");
}
