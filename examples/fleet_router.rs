//! Demonstrates the fleet front end to end, all inside one process: a
//! `FlowRouter` consistent-hashing queries across three in-process
//! `flow-server` replicas that share one summary-cache directory, an
//! `update` broadcast with a quorum ack, and a chaos kill — one replica
//! dies mid-demo, the supervisor respawns it and replays the update
//! history, and the fleet answers from the new epoch throughout.
//!
//! ```sh
//! cargo run --release --example fleet_router
//! ```
//!
//! The same fleet runs as real processes with the `flow-router` binary:
//! `cargo run --release -p flowistry-router --bin flow-router -- program.rox
//! --backends 3` — see the "Fleet deployment" section of the README.

use flowistry::prelude::*;
use std::time::Duration;

const V1: &str = "
fn read_secret() -> i32 { return 41; }
fn store(p: &mut i32, v: i32) { *p = v; }
fn audit(input: i32) -> i32 {
    let secret_value = read_secret();
    let mut cell = 0;
    store(&mut cell, secret_value);
    if input == cell { return 1; }
    return cell;
}
";

const V2: &str = "
fn read_secret() -> i32 { return 42; }
fn store(p: &mut i32, v: i32) { *p = v; }
fn audit(input: i32) -> i32 {
    let secret_value = read_secret();
    let mut audit_log = secret_value + 1;
    let mut cell = 0;
    store(&mut cell, audit_log);
    if input == cell { return 1; }
    return audit_log;
}
";

fn main() {
    // Three replicas warm-starting from one shared summary-cache dir: a
    // respawned replica re-reads its siblings' work instead of re-analyzing.
    let cache_dir = std::env::temp_dir().join(format!("fleet-demo-{}", std::process::id()));
    std::fs::create_dir_all(&cache_dir).expect("create cache dir");
    let launchers: Vec<Box<dyn flowistry_router::BackendLauncher>> = (0..3)
        .map(|_| {
            Box::new(InProcessLauncher {
                source: V1.to_string(),
                workers: 2,
                cache_dir: Some(cache_dir.clone()),
                auth_token: None,
            }) as Box<dyn flowistry_router::BackendLauncher>
        })
        .collect();
    let router = FlowRouter::start(
        launchers,
        "127.0.0.1:0",
        RouterConfig::default()
            .with_max_connections(4)
            // An eager supervisor, so the demo's kill is repaired quickly.
            .with_health_interval(Duration::from_millis(40))
            .with_failure_threshold(2),
    )
    .expect("start loopback fleet");
    println!(
        "fleet front on {}, {} replicas:",
        router.local_addr(),
        router.backend_count()
    );
    for i in 0..router.backend_count() {
        println!(
            "  replica {i} at {}",
            router.backend_addr(i).expect("replica up")
        );
    }

    // A client speaks to the fleet exactly as it would to one server; the
    // router pins each function's queries to its ring owner.
    let mut client = FlowClient::connect(router.local_addr()).expect("connect");
    let program = compile(V1).expect("demo program compiles");
    let store_fn = program.func_id("store").expect("store exists");
    let reply = client
        .query(&QueryRequest::Summary(store_fn))
        .expect("summary round-trip");
    if let QueryResponse::Summary(Some(summary)) = &reply.response {
        println!("\nsummary of `store` at epoch {}: {summary:?}", reply.epoch);
    }

    // An update broadcasts to every replica and acks at quorum: after the
    // ack, any replica answers from the new epoch.
    let epoch = client.update(V2).expect("broadcast update");
    println!("\nbroadcast V2: fleet now at epoch {epoch}");

    // Chaos: kill replica 1 out from under the fleet. Queries keep
    // flowing — the ring fails its keys over to a live successor — while
    // the supervisor respawns it and replays V2 into it.
    router.kill_backend(1);
    println!("killed replica 1; querying through the outage...");
    let v2 = compile(V2).expect("V2 compiles");
    let audit_fn = v2.func_id("audit").expect("audit exists");
    let reply = client
        .query(&QueryRequest::BackwardSlice {
            func: audit_fn,
            var: "audit_log".to_string(),
        })
        .expect("slice during outage");
    println!("  slice of `audit_log` answered at epoch {}", reply.epoch);

    // `backend_healthy` stays true until the supervisor's probes time
    // out, so wait for the respawn to be *recorded*, then for the replica
    // to be routable again.
    let respawned = |registry: &flowistry::obs::Registry| {
        registry
            .counter("flow_router_backend_respawns_total{backend=\"1\"}", "")
            .value()
            >= 1
    };
    while !(respawned(router.metrics_registry()) && router.backend_healthy(1)) {
        std::thread::sleep(Duration::from_millis(25));
    }
    println!(
        "supervisor respawned replica 1 at {}",
        router.backend_addr(1).expect("replica back")
    );
    let (epoch, stats) = client.stats().expect("stats after repair");
    println!(
        "fleet serving epoch {epoch} ({} workers per replica)",
        stats.workers
    );

    // The router's own metrics answer the wire `metrics` verb.
    let scrape = client.metrics().expect("metrics scrape");
    let respawns = scrape
        .lines()
        .find(|l| l.starts_with("flow_router_backend_respawns_total{backend=\"1\"}"))
        .expect("respawn counter");
    println!("{respawns}");

    client.shutdown_server().expect("graceful fleet shutdown");
    router.wait();
    let _ = std::fs::remove_dir_all(&cache_dir);
    println!("\nfleet shut down cleanly");
}
