//! Compares the four analysis conditions of the evaluation (§5) on the
//! paper's own motivating examples: `crop` (an unused `&mut` parameter),
//! `solve_lower_triangular` (a return value depending on a subset of the
//! inputs), `read_until` (immutable references protecting a buffer) and
//! `link_child_with_parent_component` (two `&mut` parameters that cannot
//! alias).
//!
//! Run with: `cargo run --example modular_vs_whole`

use flowistry::prelude::*;
use flowistry_lang::mir::Local;

const PROGRAM: &str = r#"
fn crop_dimms(image: &(i32, i32), x: i32, w: i32) -> i32 { return (*image).0 + x + w; }

fn crop(image: &mut (i32, i32), x: i32, w: i32) -> i32 {
    let d = crop_dimms(image, x, w);
    return d;
}

fn solve(b: &mut i32, diag: i32) -> bool {
    if diag == 0 { return false; }
    *b = *b + diag;
    return true;
}

fn func(buf: &i32) -> bool { return *buf > 10; }

fn read_until(io: &mut i32, limit: i32) -> i32 {
    let mut buf = 0;
    let mut pos = 0;
    while pos < limit {
        buf = buf + *io;
        if func(&buf) { return buf; }
        pos = pos + 1;
    }
    return buf;
}

fn link(parent: &mut i32, child: &mut i32, handle: i32) {
    *parent = *parent + handle;
}

fn driver(a: i32, b: i32) -> i32 {
    let mut image = (a, b);
    let crop_result = crop(&mut image, 1, 2);
    let mut vec = a;
    let ok = solve(&mut vec, b);
    let mut io = b;
    let read = read_until(&mut io, 3);
    let mut parent = a;
    let mut child = b;
    link(&mut parent, &mut child, 5);
    return crop_result + vec + read + parent + child;
}
"#;

fn main() {
    let program = compile(PROGRAM).expect("the example program compiles");
    let func = program.func_id("driver").expect("driver exists");
    let body = program.body(func);

    println!("per-variable dependency-set sizes in `driver`, by analysis condition\n");
    println!(
        "{:<14} {:>10} {:>14} {:>10} {:>10}",
        "variable", "modular", "whole-program", "mut-blind", "ref-blind"
    );

    let conditions = Condition::headline_four();
    let mut per_condition = Vec::new();
    for condition in &conditions {
        let results = analyze(&program, func, &AnalysisParams::for_condition(*condition));
        per_condition.push(results);
    }

    for (local_idx, decl) in body.local_decls.iter().enumerate() {
        let Some(name) = &decl.name else { continue };
        let sizes: Vec<usize> = per_condition
            .iter()
            .map(|r| r.exit_deps_of_local(Local(local_idx as u32)).len())
            .collect();
        println!(
            "{:<14} {:>10} {:>14} {:>10} {:>10}",
            name, sizes[0], sizes[1], sizes[2], sizes[3]
        );
    }

    println!("\nobservations (mirroring §5.3 of the paper):");
    println!("* whole-program shrinks `image`/`vec` because it sees crop never writes and solve's");
    println!("  return ignores the buffer;");
    println!(
        "* mut-blind inflates everything touched through the shared references in read_until;"
    );
    println!("* ref-blind inflates `parent`/`child`, which lifetimes would keep apart.");
}
