//! Reproduction of Figure 1: the `get_count` function, its MIR control-flow
//! graph, and the per-instruction information flow (the Θ annotations shown
//! on the right of the figure).
//!
//! Run with: `cargo run --example fig1_get_count`

use flowistry::prelude::*;
use flowistry_lang::mir::Location;

/// Figure 1's `get_count`, adapted to Rox: the `HashMap<String, u32>` is
/// modelled as a two-slot map `(i32, i32)` and the key selects a slot, which
/// preserves every flow the figure illustrates (the map is mutated through a
/// unique reference by `insert`, read by `get`, and control-depends on
/// `contains_key`).
const GET_COUNT: &str = r#"
fn contains_key(h: &(i32, i32), k: i32) -> bool {
    return k == 0 || k == 1;
}

fn insert(h: &mut (i32, i32), k: i32, v: i32) {
    if k == 0 { (*h).0 = v; } else { (*h).1 = v; }
}

fn get(h: &(i32, i32), k: i32) -> i32 {
    if k == 0 { return (*h).0; }
    return (*h).1;
}

fn get_count(h: &mut (i32, i32), k: i32) -> i32 {
    if !contains_key(h, k) {
        insert(h, k, 0);
        return 0;
    }
    return get(h, k);
}
"#;

fn main() {
    let program = compile(GET_COUNT).expect("the example program compiles");
    let func = program.func_id("get_count").expect("get_count exists");
    let body = program.body(func);

    println!("=== Figure 1 (left): get_count lowered to MIR ===\n");
    println!(
        "{}",
        flowistry_lang::mir::pretty::body_to_string(body, &program.structs)
    );

    let results = analyze(&program, func, &AnalysisParams::default());

    println!("=== Figure 1 (right): information flow per instruction ===\n");
    for bb in body.block_ids() {
        let data = body.block(bb);
        println!("{bb}:");
        for i in 0..=data.statements.len() {
            let loc = Location {
                block: bb,
                statement_index: i,
            };
            let what = match body.stmt_at(loc) {
                Some(stmt) => format!("{:?}", stmt.kind),
                None => format!("{:?}", data.terminator().kind),
            };
            let what = what.chars().take(60).collect::<String>();
            let theta = results.state_after(loc);
            println!("  {loc}  {what}");
            for line in theta.render().lines() {
                println!("      {line}");
            }
        }
        println!();
    }

    // The headline flows of the figure:
    let h_deref = flowistry_lang::mir::Place::from_local(flowistry_lang::mir::Local(1)).deref();
    let deps = results.exit_theta().read_conflicts(&h_deref);
    println!(
        "At exit, Θ(*h) = {{{}}}",
        deps.iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("— it contains the key argument and the switch location, i.e. the map depends on `k`");
    println!(
        "  both through insert's mutation and through the control dependence on contains_key."
    );
}
