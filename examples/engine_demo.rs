//! Demonstrates the incremental analysis engine end to end: batch analysis,
//! warm-start from a disk cache, incremental re-analysis after an edit, and
//! engine-served slicing/IFC queries.
//!
//! ```sh
//! cargo run --release --example engine_demo
//! ```
//!
//! Run it twice: the second run starts warm from `results/engine_demo.cache`
//! and re-analyzes nothing.

use flowistry::prelude::*;

const V1: &str = "
fn read_secret() -> i32 { return 41; }
fn insecure_log(x: i32) { }
fn store(p: &mut i32, v: i32) { *p = v; }
fn audit(input: i32) -> i32 {
    let secret_value = read_secret();
    let mut cell = 0;
    store(&mut cell, secret_value);
    if input == cell { insecure_log(1); }
    return cell;
}
fn unrelated(a: i32, b: i32) -> i32 {
    let x = a + 1;
    let y = b * 2;
    return x + y;
}
";

// `store` gains a statement; everything else is untouched.
const V2_EDIT: (&str, &str) = (
    "fn store(p: &mut i32, v: i32) { *p = v; }",
    "fn store(p: &mut i32, v: i32) { let doubled = v * 2; *p = doubled; }",
);

fn main() {
    let _ = std::fs::create_dir_all("results");
    let cache = "results/engine_demo.cache";
    let params = AnalysisParams::for_condition(Condition::WHOLE_PROGRAM);

    let program = compile(V1).expect("demo program compiles");
    let mut engine = AnalysisEngine::new(
        &program,
        EngineConfig::default()
            .with_params(params)
            .with_cache_path(cache),
    );

    let stats = engine.analyze_all();
    println!(
        "run 1: analyzed {} functions, {} cache hits ({} levels)",
        stats.analyzed, stats.cache_hits, stats.levels
    );

    // Query 1: a backward slice served from the engine's memoized results.
    let audit = program.func_id("audit").expect("audit exists");
    let slice = engine
        .backward_slice(audit, "cell")
        .expect("cell is a variable of audit");
    println!("\nbackward slice of `cell` in audit:");
    let audit_src: String = V1.to_string();
    for line in slice.render(&audit_src).lines().skip(1) {
        println!("  {line}");
    }

    // Query 2: IFC over the whole program, same engine instance.
    let policy = IfcPolicy::from_conventions(&program)
        .with_sink("insecure_log")
        .with_secure_producer("read_secret");
    let reports = engine.check_ifc(policy);
    println!("\nIFC violations:");
    for report in &reports {
        for violation in &report.violations {
            println!("  {violation}");
        }
    }

    // Edit one function and re-analyze: only its caller cone is dirty.
    let edited_src = V1.replace(V2_EDIT.0, V2_EDIT.1);
    assert_ne!(edited_src, V1, "the edit must apply");
    let edited = compile(&edited_src).expect("edited program compiles");
    engine.update_program(&edited);
    let stats = engine.analyze_all();
    println!(
        "\nafter editing `store`: re-analyzed {} functions, {} still cached",
        stats.analyzed, stats.cache_hits
    );
}
