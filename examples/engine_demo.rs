//! Demonstrates the incremental analysis engine end to end: batch analysis,
//! warm-start from a disk cache, incremental re-analysis after an edit,
//! snapshot-served slicing/IFC queries, and the `FlowService` front that
//! answers queries concurrently while re-analysis happens in the
//! background.
//!
//! ```sh
//! cargo run --release --example engine_demo
//! ```
//!
//! Run it twice: the second run starts warm from `results/engine_demo.cache`
//! and re-analyzes nothing.

use flowistry::prelude::*;
use std::sync::Arc;

const V1: &str = "
fn read_secret() -> i32 { return 41; }
fn insecure_log(x: i32) { }
fn store(p: &mut i32, v: i32) { *p = v; }
fn audit(input: i32) -> i32 {
    let secret_value = read_secret();
    let mut cell = 0;
    store(&mut cell, secret_value);
    if input == cell { insecure_log(1); }
    return cell;
}
fn unrelated(a: i32, b: i32) -> i32 {
    let x = a + 1;
    let y = b * 2;
    return x + y;
}
";

// `store` gains a statement; everything else is untouched.
const V2_EDIT: (&str, &str) = (
    "fn store(p: &mut i32, v: i32) { *p = v; }",
    "fn store(p: &mut i32, v: i32) { let doubled = v * 2; *p = doubled; }",
);

fn main() {
    let _ = std::fs::create_dir_all("results");
    let cache = "results/engine_demo.cache";
    let params = AnalysisParams::for_condition(Condition::WHOLE_PROGRAM);

    let program = Arc::new(compile(V1).expect("demo program compiles"));
    let mut engine = AnalysisEngine::new(
        program.clone(),
        EngineConfig::default()
            .with_params(params)
            .with_cache_path(cache),
    );

    let stats = engine.analyze_all();
    println!(
        "run 1: analyzed {} functions, {} cache hits ({} levels)",
        stats.analyzed, stats.cache_hits, stats.levels
    );

    // The snapshot is the owned query surface: no lifetime, cheap clones,
    // safe to hand to any thread.
    let snapshot = engine.snapshot();

    // Query 1: a backward slice served from the snapshot's memoized results.
    let audit = program.func_id("audit").expect("audit exists");
    let slice = snapshot
        .backward_slice(audit, "cell")
        .expect("cell is a variable of audit");
    println!("\nbackward slice of `cell` in audit:");
    for line in slice.render(V1).lines().skip(1) {
        println!("  {line}");
    }

    // Query 2: IFC over the whole program, same snapshot.
    let policy = IfcPolicy::from_conventions(&program)
        .with_sink("insecure_log")
        .with_secure_producer("read_secret");
    let reports = snapshot.check_ifc(policy.clone());
    println!("\nIFC violations:");
    for report in &reports {
        for violation in &report.violations {
            println!("  {violation}");
        }
    }

    // Put the service front on: queries go through a typed protocol and a
    // worker pool, and updates re-analyze in the background.
    let service = FlowService::new(engine, ServiceConfig::default());
    let reply = service.query(QueryRequest::Summary(
        program.func_id("store").expect("store exists"),
    ));
    println!("\nservice summary of `store` (epoch {}):", reply.epoch);
    if let QueryResponse::Summary(Some(summary)) = &reply.response {
        println!(
            "  {} mutation(s) visible to callers",
            summary.mutations.len()
        );
    }

    // Edit one function and update through the service: the re-analysis is
    // warm from the cache, and the swap is atomic — queries before the swap
    // answer epoch 0, queries after answer epoch 1.
    let edited_src = V1.replace(V2_EDIT.0, V2_EDIT.1);
    assert_ne!(edited_src, V1, "the edit must apply");
    let edited = Arc::new(compile(&edited_src).expect("edited program compiles"));
    let epoch = service.update(edited);
    service.wait_for_epoch(epoch);
    let stats = service.snapshot().stats();
    println!(
        "\nafter editing `store` (epoch {epoch}): re-analyzed {} functions, {} still cached",
        stats.analyzed, stats.cache_hits
    );
}
