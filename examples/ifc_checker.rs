//! The information flow control checker (Figure 5b): flag flows from secure
//! data (a password) to insecure operations (printing), including implicit
//! flows through branches.
//!
//! Run with: `cargo run --example ifc_checker`

use flowistry::prelude::*;

/// The password-checking program of Figure 5b, adapted to Rox. The policy is
/// derived from naming conventions: `read_password` produces secure data,
/// `insecure_print` is an insecure sink.
const PROGRAM: &str = r#"
fn read_password() -> i32 { return 271828; }
fn insecure_print(x: i32) { }

fn check_password(input: i32) -> bool {
    let password = read_password();
    if input == password {
        insecure_print(1);
        return true;
    }
    return false;
}

fn greet(user_id: i32) {
    insecure_print(user_id);
}
"#;

fn main() {
    let program = compile(PROGRAM).expect("the example program compiles");
    let policy = IfcPolicy::from_conventions(&program);
    println!("policy derived from naming conventions:");
    println!("  secure producers: {:?}", policy.secure_producers);
    println!("  secure locals:    {:?}", policy.secure_locals);
    println!("  insecure sinks:   {:?}\n", policy.insecure_sinks);

    let checker = IfcChecker::new(&program, policy);
    let reports = checker.check_program();

    if reports.is_empty() {
        println!("no secure → insecure flows found");
    }
    for report in &reports {
        println!("function `{}`:", report.function);
        for violation in &report.violations {
            println!("  VIOLATION: {violation}");
        }
    }

    println!();
    let clean = checker.check_function("greet").expect("greet exists");
    println!(
        "function `greet` checked {} sink call(s): {}",
        clean.sink_calls_checked,
        if clean.is_clean() {
            "clean (user_id is not secret)"
        } else {
            "violations found"
        }
    );
}
