//! The information flow control checker (Figure 5b), grown into the
//! lattice policy engine: a multi-level policy written in source
//! annotations, a declassification point, and structured diagnostics
//! carrying a flow witness.
//!
//! Run with: `cargo run --example ifc_checker`

use flowistry::ifc::{IfcChecker, IfcPolicy, Policy, PolicyChecker};
use flowistry::prelude::compile;

/// An audit-logging program under the `Low < Med < High < TopSecret`
/// lattice, annotated in the source itself:
///
/// * `read_credentials` produces `High` data and `session_nonce` `Med`;
/// * `audit_log` is a sink cleared up to `Med`, `debug_dump` only to `Low`;
/// * `fingerprint`'s call in `login` is declassified — the hashed
///   credential may be logged even though its input is `High`.
const PROGRAM: &str = r#"
#![lattice(multi_level)]
#![default_label(Low)]

#[label(High)]
fn read_credentials(seed: i32) -> i32 { return seed * 31 + 7; }

#[label(Med)]
fn session_nonce(seed: i32) -> i32 { return seed + 100; }

fn fingerprint(x: i32) -> i32 { return x * 40503 + 13; }

#[sink(Med)]
fn audit_log(x: i32) -> i32 { return x; }

#[sink(Low)]
fn debug_dump(x: i32) -> i32 { return x; }

fn login(seed: i32, attempt: i32) -> bool {
    let cred = read_credentials(seed);
    let nonce = session_nonce(seed);
    #[declassify] let tag = fingerprint(cred);
    let ok1 = audit_log(tag);
    let ok2 = audit_log(nonce);
    let leak = debug_dump(nonce);
    return attempt == cred;
}
"#;

fn main() {
    let program = compile(PROGRAM).expect("the example program compiles");

    let policy = Policy::from_annotations(&program).expect("annotations are well-formed");
    let checker = PolicyChecker::new(&program, policy).expect("policy validates");
    println!(
        "lattice: {:?} (bottom {}, top {})",
        checker
            .lattice()
            .labels()
            .map(|l| checker.lattice().name(l))
            .collect::<Vec<_>>(),
        checker.lattice().name(checker.lattice().bottom()),
        checker.lattice().name(checker.lattice().top()),
    );

    let reports = checker.check_program();
    for report in &reports {
        println!("\nfunction `{}`:", report.function);
        for diag in &report.diagnostics {
            println!(
                "  VIOLATION at line {}: `{}` (cleared to {}) observes {} data",
                diag.line, diag.sink, diag.clearance, diag.incoming_label
            );
            for source in &diag.sources {
                println!("    source: {source}");
            }
            print!("    flow witness (lines):");
            for step in &diag.witness {
                print!(" {}", step.line);
            }
            println!();
        }
    }

    // What the declassification bought: `audit_log(tag)` is NOT among the
    // violations — `fingerprint(cred)` is a sanctioned release point —
    // while `debug_dump(nonce)` is, because `Med` exceeds its `Low`
    // clearance.
    let login = reports
        .iter()
        .find(|r| r.function == "login")
        .expect("login is reported");
    assert!(login.diagnostics.iter().all(|d| d.sink != "audit_log"));
    assert!(login.diagnostics.iter().any(|d| d.sink == "debug_dump"));
    println!("\n`audit_log(tag)` passes: the fingerprint call is declassified.");

    // The legacy two-point convention checker still works unchanged.
    let legacy = IfcChecker::new(&program, IfcPolicy::from_conventions(&program));
    println!(
        "legacy convention policy finds {} violation(s) here (no conventional names).",
        legacy
            .check_program()
            .iter()
            .map(|r| r.violations.len())
            .sum::<usize>()
    );
}
