//! Demonstrates the TCP wire front end to end, all inside one process: a
//! `FlowServer` serving a `FlowService` on an ephemeral loopback port, and
//! a `FlowClient` querying it — blocking round-trips, pipelined bursts, a
//! server-side `update` that recompiles edited source, and a graceful wire
//! shutdown.
//!
//! ```sh
//! cargo run --release --example network_service
//! ```
//!
//! The same protocol works from any TCP client — see the "Network
//! protocol" section of the README for the raw wire grammar and an
//! `nc`-style transcript, or start a standalone server with
//! `cargo run --release -p flowistry-server --bin flow-server -- program.rox`.

use flowistry::prelude::*;
use std::sync::Arc;

const V1: &str = "
fn read_secret() -> i32 { return 41; }
fn store(p: &mut i32, v: i32) { *p = v; }
fn audit(input: i32) -> i32 {
    let secret_value = read_secret();
    let mut cell = 0;
    store(&mut cell, secret_value);
    if input == cell { return 1; }
    return cell;
}
";

fn main() {
    let params = AnalysisParams::for_condition(Condition::WHOLE_PROGRAM);
    let program = Arc::new(compile(V1).expect("demo program compiles"));
    let engine = AnalysisEngine::new(program.clone(), EngineConfig::default().with_params(params));
    let service = FlowService::new(engine, ServiceConfig::default());

    // Port 0 = ephemeral: the OS picks a free port, `local_addr` has it.
    let server = FlowServer::bind(service, "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback server");
    println!("serving on {}", server.local_addr());

    let mut client = FlowClient::connect(server.local_addr()).expect("connect");

    // A blocking round-trip: one request line out, one response line back.
    let store = program.func_id("store").expect("store exists");
    let reply = client
        .query(&QueryRequest::Summary(store))
        .expect("summary round-trip");
    if let QueryResponse::Summary(Some(summary)) = &reply.response {
        println!(
            "summary of `store` (epoch {}): {} caller-visible mutation(s)",
            reply.epoch,
            summary.mutations.len()
        );
    }

    // Pipelining: submit a burst without waiting, then collect in order.
    let audit = program.func_id("audit").expect("audit exists");
    client.submit(&QueryRequest::Results(audit)).unwrap();
    client
        .submit(&QueryRequest::BackwardSlice {
            func: audit,
            var: "cell".to_string(),
        })
        .unwrap();
    client.submit(&QueryRequest::Stats).unwrap();
    println!("pipelined {} requests", client.pending());
    let _results = client.recv().expect("results");
    let slice = client.recv().expect("slice");
    if let QueryResponse::BackwardSlice(Some(slice)) = &slice.response {
        println!(
            "backward slice of `cell` in audit covers lines {:?}",
            slice.lines
        );
    }
    let stats = client.recv().expect("stats");
    if let QueryResponse::Stats(stats) = &stats.response {
        println!(
            "server: {} worker(s), {} request(s) served",
            stats.workers, stats.served
        );
    }

    // Edit a function and push the new source over the wire: the server
    // recompiles, re-analyzes in the background (warm from its summary
    // cache), and acknowledges once the new snapshot serves.
    let edited = V1.replace("return 41;", "return 43;");
    let epoch = client.update(&edited).expect("wire update");
    let reply = client
        .query(&QueryRequest::Summary(store))
        .expect("post-update query");
    println!("after update: epoch {} (expected {epoch})", reply.epoch);

    // Graceful shutdown over the wire: the server answers `bye`, stops
    // accepting, and drains everything it accepted before exiting.
    client.shutdown_server().expect("wire shutdown");
    server.wait();
    println!("server shut down cleanly");
}
