//! Quickstart: compile a Rox program, run the modular information flow
//! analysis, and inspect dependency sets.
//!
//! Run with: `cargo run --example quickstart`

use flowistry::prelude::*;
use flowistry_lang::mir::Local;

/// The paper's introductory `copy_to` example (Section 1), adapted to Rox:
/// the vector is modelled as a pair of slots and `push` as a function that
/// writes one of them. The key flow the analysis must find is that the
/// output vector is influenced by the input vector *through the call to
/// `push`*, using nothing but `push`'s type signature.
const COPY_TO: &str = r#"
fn push(out: &mut (i32, i32), slot: i32, value: i32) {
    if slot == 0 { (*out).0 = value; } else { (*out).1 = value; }
}

fn copy_to(v: &(i32, i32), max: i32) -> (i32, i32) {
    let mut out = (0, 0);
    let mut i = 0;
    while i < max {
        push(&mut out, i, (*v).0);
        i = i + 1;
    }
    return out;
}
"#;

fn main() {
    let program = compile(COPY_TO).expect("the example program compiles");
    println!(
        "compiled {} functions, {} MIR instructions total\n",
        program.bodies.len(),
        program.total_instructions()
    );

    let func = program.func_id("copy_to").expect("copy_to exists");
    println!("=== MIR of copy_to ===");
    println!(
        "{}",
        flowistry_lang::mir::pretty::body_to_string(program.body(func), &program.structs)
    );

    let results = analyze(&program, func, &AnalysisParams::default());
    let body = program.body(func);

    println!("=== dependency sets at function exit ===");
    for (local, deps) in results.user_variable_deps(body) {
        let name = body.local_decl(local).name.clone().unwrap_or_default();
        let rendered: Vec<String> = deps.iter().map(|d| d.to_string()).collect();
        println!("  {name:<5} ({local}): {{{}}}", rendered.join(", "));
    }
    let ret = results.exit_deps_of_local(Local(0));
    println!(
        "\nreturn value depends on arguments: {:?}",
        ret.iter().filter_map(|d| d.arg()).collect::<Vec<_>>()
    );
    println!("(arg(_1) is the source vector `v`, arg(_2) is `max` — both flow into the result,");
    println!(" and the analysis never looked at the body of `push`, only its signature.)");

    // Execute the program to confirm the flows are real.
    let interp = Interpreter::new(&program);
    let out = interp
        .run_with_env(
            func,
            vec![
                Value::Tuple(vec![Value::Int(7), Value::Int(9)]),
                Value::Int(2),
            ],
        )
        .expect("execution succeeds");
    println!("\ninterpreted copy_to((7, 9), 2) = {}", out.return_value);
}
