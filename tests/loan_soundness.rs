//! Empirical check of the paper's Lemma A.2: *a place expression's loan set
//! contains the place it points to at runtime*.
//!
//! For functions that return a reference, we run the interpreter with a
//! synthesized environment, observe where the returned pointer actually
//! points, translate that runtime location back into a place expression of
//! the analyzed function, and assert that the static alias analysis (driven
//! by the lifetime-derived loan sets, §2.2/§4.2) predicted it.

use flowistry::prelude::*;
use flowistry_core::{AliasAnalysis, AliasMode};
use flowistry_lang::mir::{Local, Place};

/// Runs `func` with environment-backed reference arguments and returns the
/// place (in caller-of-`func` terms, i.e. rooted at the corresponding
/// parameter) that the *returned reference* points to at runtime.
fn runtime_pointee(program: &CompiledProgram, name: &str, args: Vec<Value>) -> Place {
    let func = program.func_id(name).expect("function exists");
    let interp = Interpreter::new(program);
    let out = interp.run_with_env(func, args).expect("execution succeeds");
    match out.return_value {
        Value::Ref(ptr) => {
            assert_eq!(
                ptr.frame, 0,
                "returned reference must point into the environment frame"
            );
            // Environment slot i backs parameter _{i+1}; the pointee is
            // therefore the place (*_{i+1}) extended with the pointer's
            // projection.
            let param = Local(ptr.place.local.0 + 1);
            let mut place = Place::from_local(param).deref();
            place
                .projection
                .extend(ptr.place.projection.iter().copied());
            place
        }
        other => panic!("expected the function to return a reference, got {other}"),
    }
}

/// The static alias set the analysis computes for the returned reference's
/// referent, i.e. aliases of `(*_0)` in the callee's own body.
fn static_aliases(program: &CompiledProgram, name: &str) -> std::collections::BTreeSet<Place> {
    let func = program.func_id(name).expect("function exists");
    let body = program.body(func);
    let aliases = AliasAnalysis::new(body, &program.structs, AliasMode::Lifetimes);
    aliases.aliases(&Place::return_place().deref())
}

/// Asserts Lemma A.2 for one function: the runtime pointee (or one of its
/// conflicting places) is contained in the statically computed alias set.
fn assert_loans_cover_runtime(program: &CompiledProgram, name: &str, args: Vec<Value>) {
    let runtime = runtime_pointee(program, name, args);
    let aliases = static_aliases(program, name);
    let covered = aliases.iter().any(|a| a.conflicts_with(&runtime));
    assert!(
        covered,
        "{name}: runtime pointee {runtime} not covered by static aliases {aliases:?}"
    );
}

const PROGRAMS: &str = r#"
struct Pair { a: i32, b: i32 }

fn first_field<'a>(p: &'a mut Pair) -> &'a mut i32 {
    return &mut (*p).a;
}

fn pick_field<'a>(p: &'a mut Pair, which: bool) -> &'a mut i32 {
    if which { return &mut (*p).a; }
    return &mut (*p).b;
}

fn pass_through<'a>(p: &'a mut Pair) -> &'a mut i32 {
    let inner = first_field(p);
    return inner;
}

fn tuple_slot<'a>(t: &'a mut (i32, (i32, i32))) -> &'a mut i32 {
    let outer = &mut (*t).1;
    return &mut (*outer).0;
}

fn identity<'a>(r: &'a mut i32) -> &'a mut i32 {
    return r;
}
"#;

fn compiled() -> CompiledProgram {
    let program = compile(PROGRAMS).expect("programs compile");
    assert!(
        program.borrow_errors.is_empty(),
        "{:?}",
        program.borrow_errors
    );
    program
}

fn pair(a: i64, b: i64, program: &CompiledProgram) -> Value {
    Value::Struct(
        program.structs.lookup("Pair").expect("Pair exists"),
        vec![Value::Int(a), Value::Int(b)],
    )
}

#[test]
fn direct_field_borrow_is_covered() {
    let program = compiled();
    let p = pair(1, 2, &program);
    assert_loans_cover_runtime(&program, "first_field", vec![p]);
}

#[test]
fn branch_dependent_borrows_are_covered_on_both_paths() {
    let program = compiled();
    for which in [true, false] {
        let p = pair(1, 2, &program);
        assert_loans_cover_runtime(&program, "pick_field", vec![p, Value::Bool(which)]);
    }
}

#[test]
fn reference_returned_through_a_callee_is_covered() {
    let program = compiled();
    let p = pair(5, 6, &program);
    assert_loans_cover_runtime(&program, "pass_through", vec![p]);
}

#[test]
fn nested_tuple_reborrow_is_covered() {
    let program = compiled();
    let t = Value::Tuple(vec![
        Value::Int(0),
        Value::Tuple(vec![Value::Int(7), Value::Int(8)]),
    ]);
    assert_loans_cover_runtime(&program, "tuple_slot", vec![t]);
}

#[test]
fn identity_reference_is_covered() {
    let program = compiled();
    assert_loans_cover_runtime(&program, "identity", vec![Value::Int(3)]);
}

#[test]
fn ref_blind_aliases_are_a_superset_of_lifetime_aliases() {
    // The Ref-blind ablation must never be *more* precise than the
    // lifetime-based analysis on the returned reference's referent.
    let program = compiled();
    for name in [
        "first_field",
        "pick_field",
        "pass_through",
        "tuple_slot",
        "identity",
    ] {
        let func = program.func_id(name).unwrap();
        let body = program.body(func);
        let precise = AliasAnalysis::new(body, &program.structs, AliasMode::Lifetimes);
        let blind = AliasAnalysis::new(body, &program.structs, AliasMode::TypeBased);
        let target = Place::return_place().deref();
        let precise_set = precise.aliases(&target);
        let blind_set = blind.aliases(&target);
        for place in &precise_set {
            // Every concrete (non-opaque) alias found with lifetimes must be
            // explainable under the type-based assumption as well, possibly
            // through a conflicting (coarser) place.
            assert!(
                blind_set.iter().any(|b| b.conflicts_with(place)) || place.has_deref(),
                "{name}: {place} in lifetime aliases but unexplained by ref-blind {blind_set:?}"
            );
        }
    }
}

#[test]
fn mutation_through_returned_reference_reaches_the_environment() {
    // End-to-end: a caller that mutates through the returned reference must
    // actually change the Pair in the environment, and the analysis must
    // have predicted a flow into the Pair argument.
    let src = r#"
        struct Pair { a: i32, b: i32 }
        fn first_field<'a>(p: &'a mut Pair) -> &'a mut i32 { return &mut (*p).a; }
        fn caller(p: &mut Pair, v: i32) {
            let slot = first_field(p);
            *slot = v;
        }
    "#;
    let program = compile(src).unwrap();
    let caller = program.func_id("caller").unwrap();

    // Dynamic check.
    let interp = Interpreter::new(&program);
    let out = interp
        .run_with_env(
            caller,
            vec![
                Value::Struct(
                    program.structs.lookup("Pair").unwrap(),
                    vec![Value::Int(0), Value::Int(9)],
                ),
                Value::Int(42),
            ],
        )
        .unwrap();
    assert_eq!(
        out.environment.locals[0],
        Some(Value::Struct(
            program.structs.lookup("Pair").unwrap(),
            vec![Value::Int(42), Value::Int(9)]
        ))
    );

    // Static check: (*p) depends on the argument v at exit.
    let results = analyze(&program, caller, &AnalysisParams::default());
    let deps = results
        .exit_theta()
        .read_conflicts(&Place::from_local(Local(1)).deref());
    assert!(
        deps.iter().any(|d| d.arg() == Some(Local(2))),
        "expected v to flow into *p: {deps:?}"
    );
}
