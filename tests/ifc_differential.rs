//! Interpreter-differential testing of the IFC policy checker.
//!
//! Two properties over the generated labeled corpus
//! ([`flowistry::corpus::labeled`]):
//!
//! 1. **No missed interference.** For every driver the policy checker
//!    reports *secure*, varying its high inputs (secret-source seeds and
//!    `#[label(Secret)]` parameters) must not change anything a sink
//!    observes — checked by running the interpreter on input pairs that
//!    differ only in the high inputs and comparing the sink call traces.
//!    Drivers containing `#[declassify]` are excluded: released data
//!    legitimately varies with high inputs.
//!
//! 2. **Two-point embedding equivalence.** Running the lattice checker on
//!    [`Policy::from_legacy`] of a legacy policy produces bit-identical
//!    verdicts (checked sink counts, violation locations, lines, sources)
//!    to the legacy [`IfcChecker`] — across the labeled corpus *and* the
//!    ten-crate synthetic evaluation corpus.

use flowistry::core::{analyze, AnalysisParams, Condition};
use flowistry::corpus::{differential_corpus, generate_corpus, LabeledProgram, DEFAULT_SEED};
use flowistry::ifc::{IfcChecker, IfcPolicy, Policy, PolicyChecker};
use flowistry::interp::{CallEvent, Interpreter, Rng, Value};
use flowistry::lang::types::FuncId;

const TRIALS_PER_DRIVER: usize = 4;

fn whole_program() -> AnalysisParams {
    AnalysisParams::for_condition(Condition::WHOLE_PROGRAM)
}

/// The sink-visible behavior of one execution: every call to a sink
/// function, in order, with its argument values.
fn sink_trace(calls: &[CallEvent], sinks: &[String]) -> Vec<(String, Vec<Value>)> {
    calls
        .iter()
        .filter(|c| sinks.contains(&c.callee))
        .map(|c| (c.callee.clone(), c.args.clone()))
        .collect()
}

#[test]
fn analysis_secure_drivers_show_no_interference() {
    let corpus = differential_corpus();
    assert!(
        corpus.len() >= 200,
        "differential corpus must span at least 200 programs"
    );

    let mut rng = Rng::new(0xD1FF);
    let mut clean_drivers = 0usize;
    let mut compared = 0usize;

    for p in &corpus {
        let policy = Policy::from_annotations(&p.program)
            .unwrap_or_else(|e| panic!("{}: bad annotations: {e}", p.name));
        let checker = PolicyChecker::new(&p.program, policy)
            .unwrap_or_else(|e| panic!("{}: bad policy: {e}", p.name))
            .with_params(whole_program());
        let interp = Interpreter::new(&p.program);

        for d in &p.drivers {
            let report = checker
                .check_function(&d.name)
                .expect("driver exists by construction");
            if !report.is_clean() || d.declassifies {
                continue;
            }
            clean_drivers += 1;
            let func = p.program.func_id(&d.name).expect("driver exists");

            for _ in 0..TRIALS_PER_DRIVER {
                let base: Vec<Value> = (0..d.num_params)
                    .map(|_| Value::Int(rng.small_int()))
                    .collect();
                let mut varied = base.clone();
                for &i in &d.high_inputs {
                    let Value::Int(old) = base[i] else {
                        unreachable!()
                    };
                    let mut next = rng.small_int();
                    if next == old {
                        next += 1;
                    }
                    varied[i] = Value::Int(next);
                }
                let (Ok(a), Ok(b)) = (
                    interp.run_with_env(func, base.clone()),
                    interp.run_with_env(func, varied.clone()),
                ) else {
                    continue; // runtime error (fuel, arithmetic): trial is inconclusive
                };
                compared += 1;
                let ta = sink_trace(&a.calls, &p.sink_names);
                let tb = sink_trace(&b.calls, &p.sink_names);
                assert_eq!(
                    ta, tb,
                    "interference in analysis-secure driver {}::{} \
                     (base {base:?}, varied {varied:?}):\n{}",
                    p.name, d.name, p.source
                );
            }
        }
    }

    assert!(
        clean_drivers >= 50,
        "oracle is vacuous: only {clean_drivers} analysis-secure drivers"
    );
    assert!(
        compared >= 100,
        "oracle is vacuous: only {compared} executions compared"
    );
}

/// Asserts the lattice checker under the two-point legacy embedding agrees
/// bit-for-bit with the legacy checker on every function of `program`
/// without declassification points (which the legacy checker cannot
/// express).
fn assert_two_point_matches_legacy(
    name: &str,
    program: &flowistry::lang::CompiledProgram,
    params: &AnalysisParams,
) {
    let legacy_policy = IfcPolicy::from_conventions(program);
    let legacy = IfcChecker::new(program, legacy_policy.clone()).with_params(params.clone());
    let lattice = PolicyChecker::new(program, Policy::from_legacy(&legacy_policy))
        .unwrap_or_else(|e| panic!("{name}: legacy embedding invalid: {e}"))
        .with_params(params.clone());

    for i in 0..program.bodies.len() {
        if !program.bodies[i].declassified_calls.is_empty() {
            continue;
        }
        let func = FuncId(i as u32);
        let results = analyze(program, func, params);
        let lr = legacy.check_with_results(func, &results);
        let pr = lattice.check_with_results(func, &results);
        let fname = &program.signatures[i].name;
        assert_eq!(
            lr.sink_calls_checked, pr.sink_calls_checked,
            "{name}::{fname}: sink counts diverge"
        );
        assert_eq!(
            lr.violations.len(),
            pr.diagnostics.len(),
            "{name}::{fname}: verdicts diverge:\nlegacy {:?}\nlattice {:?}",
            lr.violations,
            pr.diagnostics
        );
        for (v, d) in lr.violations.iter().zip(&pr.diagnostics) {
            assert_eq!(v.in_function, d.in_function, "{name}::{fname}");
            assert_eq!(v.sink, d.sink, "{name}::{fname}");
            assert_eq!(v.location, d.location, "{name}::{fname}");
            assert_eq!(v.line, d.line, "{name}::{fname}");
            assert_eq!(v.sources, d.sources, "{name}::{fname}");
        }
    }
}

#[test]
fn two_point_checker_is_bit_identical_to_legacy_on_labeled_corpus() {
    let params = whole_program();
    for p in differential_corpus() {
        assert_two_point_matches_legacy(&p.name, &p.program, &params);

        // On this corpus the annotations and the naming conventions express
        // the same policy. The representations differ in one spot — the
        // conventions record a sensitively-named parameter as a secure
        // *local* (parameters are named locals), annotations as a *param*
        // label — so compare the merged variable pool.
        let from_ann = Policy::from_annotations(&p.program).unwrap();
        let from_conv = Policy::from_conventions(&p.program);
        let var_labels = |pol: &Policy| {
            let mut all: Vec<_> = pol
                .param_labels
                .iter()
                .chain(&pol.local_labels)
                .cloned()
                .collect();
            all.sort();
            all
        };
        assert_eq!(
            var_labels(&from_ann),
            var_labels(&from_conv),
            "{}: variable labels diverge",
            p.name
        );
        let sorted = |mut v: Vec<(String, String)>| {
            v.sort();
            v
        };
        assert_eq!(
            sorted(from_ann.fn_labels),
            sorted(from_conv.fn_labels),
            "{}: function labels diverge",
            p.name
        );
        assert_eq!(
            sorted(from_ann.sink_clearances),
            sorted(from_conv.sink_clearances),
            "{}: sink clearances diverge",
            p.name
        );
    }
}

#[test]
fn two_point_checker_is_bit_identical_to_legacy_on_evaluation_corpus() {
    // The ten-crate corpus has no sensitive names, so this leg mostly pins
    // down the "empty policy stays silent" behavior — cheap with the
    // modular condition, and the property is condition-agnostic.
    let params = AnalysisParams::default();
    for krate in generate_corpus(DEFAULT_SEED) {
        assert_two_point_matches_legacy(&krate.name, &krate.program, &params);
    }
}

/// Spot check that the labeled generator produces both verdicts: a corpus
/// where every driver is insecure (or every driver secure) would leave one
/// side of the differential untested.
#[test]
fn labeled_corpus_produces_both_verdicts() {
    let corpus: Vec<LabeledProgram> = differential_corpus().into_iter().take(30).collect();
    let mut clean = 0usize;
    let mut violating = 0usize;
    for p in &corpus {
        let checker = PolicyChecker::new(&p.program, Policy::from_annotations(&p.program).unwrap())
            .unwrap()
            .with_params(whole_program());
        for d in &p.drivers {
            if checker.check_function(&d.name).unwrap().is_clean() {
                clean += 1;
            } else {
                violating += 1;
            }
        }
    }
    assert!(clean > 0, "no secure drivers in the first 30 programs");
    assert!(
        violating > 0,
        "no insecure drivers in the first 30 programs"
    );
}
