//! Bit-equality of the indexed dataflow domain against the tree domain.
//!
//! The indexed representation (`DomainKind::Indexed`, the default) must be
//! a pure performance change: for every program, function and condition it
//! has to produce `InfoFlowResults` that compare equal to the tree-map Θ
//! path (`DomainKind::Tree`), and therefore identical function summaries
//! and backward slices. This suite asserts exactly that over
//!
//! * the full generated corpus (all ten profile crates), and
//! * proptest-style randomly generated programs exercising branches,
//!   loops, references, aggregates and calls.

use flowistry::prelude::*;
use flowistry_core::FunctionSummary;
use flowistry_corpus::{generate_corpus, DEFAULT_SEED};
use flowistry_lang::mir::Place;
use flowistry_lang::types::FuncId;
use proptest::prelude::*;

fn params(condition: Condition, domain: DomainKind) -> AnalysisParams {
    AnalysisParams {
        condition,
        domain,
        ..AnalysisParams::default()
    }
}

/// Analyzes `func` under both domains and asserts every observable output
/// is identical: the full per-location results, the extracted summary, and
/// the backward slice of the return place at every return location.
fn assert_equivalent(
    program: &CompiledProgram,
    func: FuncId,
    base: &AnalysisParams,
    context: &str,
) {
    let tree = analyze(
        program,
        func,
        &AnalysisParams {
            domain: DomainKind::Tree,
            ..base.clone()
        },
    );
    let indexed = analyze(
        program,
        func,
        &AnalysisParams {
            domain: DomainKind::Indexed,
            ..base.clone()
        },
    );
    let body = program.body(func);
    assert_eq!(
        tree, indexed,
        "results differ for `{}` under {} ({context})",
        body.name, base.condition
    );
    assert_eq!(
        tree.iterations(),
        indexed.iterations(),
        "iteration counts differ for `{}` ({context})",
        body.name
    );
    assert_eq!(tree.hit_boundary(), indexed.hit_boundary());

    let tree_summary = FunctionSummary::from_exit_state(body, tree.exit_theta());
    let indexed_summary = FunctionSummary::from_exit_state(body, indexed.exit_theta());
    assert_eq!(
        tree_summary, indexed_summary,
        "summaries differ for `{}` ({context})",
        body.name
    );

    for loc in body.return_locations() {
        assert_eq!(
            tree.backward_slice(&Place::return_place(), loc),
            indexed.backward_slice(&Place::return_place(), loc),
            "backward slices at {loc} differ for `{}` ({context})",
            body.name
        );
    }
}

/// Every function of every corpus crate, under the modular condition (the
/// paper's headline analysis and the hot path of every layer above).
#[test]
fn corpus_modular_results_are_bit_identical() {
    let mut checked = 0usize;
    for krate in generate_corpus(DEFAULT_SEED) {
        let base = params(Condition::MODULAR, DomainKind::Indexed);
        for &func in &krate.crate_funcs {
            assert_equivalent(&krate.program, func, &base, &krate.name);
            checked += 1;
        }
    }
    assert!(checked > 300, "corpus shrank: only {checked} functions");
}

/// The remaining headline conditions (whole-program, mut-blind, ref-blind)
/// on two representative crates: `rayon` (reference-light) and `sccache`
/// (call- and boundary-heavy). The modular condition is covered corpus-wide
/// above. Whole-program runs with summary memoization to keep the
/// naive-recursion cost bounded; the naive path is covered by the
/// random-program suite below and by the core unit tests.
#[test]
fn corpus_headline_conditions_are_bit_identical() {
    let corpus = generate_corpus(DEFAULT_SEED);
    for krate in [&corpus[0], &corpus[3]] {
        for condition in Condition::headline_four() {
            if condition == Condition::MODULAR {
                continue;
            }
            let base = AnalysisParams {
                condition,
                available_bodies: Some(krate.available_bodies()),
                memoize_summaries: condition.whole_program,
                ..AnalysisParams::default()
            };
            for &func in &krate.crate_funcs {
                assert_equivalent(&krate.program, func, &base, &krate.name);
            }
        }
    }
}

/// Seeded summary stores must behave identically too: computing every
/// summary bottom-up (the engine's unit of work) and re-serving analyses
/// from the seeds yields the same summaries on both domains.
#[test]
fn corpus_seeded_summaries_are_bit_identical() {
    use flowistry_core::{compute_summary, CachedSummary};
    use std::collections::HashMap;

    let krate = &generate_corpus(DEFAULT_SEED)[1];
    let mut by_domain = Vec::new();
    for domain in [DomainKind::Tree, DomainKind::Indexed] {
        let base = AnalysisParams {
            condition: Condition::WHOLE_PROGRAM,
            domain,
            available_bodies: Some(krate.available_bodies()),
            ..AnalysisParams::default()
        };
        let mut store: HashMap<FuncId, CachedSummary> = HashMap::new();
        // Positional order is good enough for seeding here: a missing callee
        // summary just means the analysis recurses, which must also match.
        for &func in &krate.crate_funcs {
            let entry = compute_summary(&krate.program, func, &base, &store);
            store.insert(func, entry);
        }
        by_domain.push(store);
    }
    assert_eq!(by_domain[0].len(), by_domain[1].len());
    for (func, tree_entry) in &by_domain[0] {
        assert_eq!(
            Some(tree_entry),
            by_domain[1].get(func),
            "seeded summary differs for {func:?}"
        );
    }
}

/// Builds a small function from a random recipe of statements over four
/// mutable scalars, two helpers (one mutating through `&mut`, one reading
/// through `&`), branches and a loop — enough to exercise every transfer
/// rule of the analysis.
fn program_from_recipe(ops: &[(u8, usize, usize)]) -> String {
    let mut body = String::from(
        "fn bump(p: &mut i32, v: i32) { *p = *p + v; }\n\
         fn read_pair(a: &i32, b: i32) -> i32 { return *a + b; }\n\
         fn f(a: i32, b: i32, c: i32, d: i32) -> i32 {\n",
    );
    body.push_str(
        "    let mut v0 = a;\n    let mut v1 = b;\n    let mut v2 = c;\n    let mut v3 = d;\n    let mut t = (a, b);\n",
    );
    for (kind, x, y) in ops {
        let x = x % 4;
        let y = y % 4;
        match kind % 8 {
            0 => body.push_str(&format!("    v{x} = v{x} + v{y};\n")),
            1 => body.push_str(&format!("    v{x} = v{y} * 2;\n")),
            2 => body.push_str(&format!("    if v{y} > 0 {{ v{x} = v{x} + 1; }}\n")),
            3 => body.push_str(&format!("    while v{x} > v{y} {{ v{x} = v{x} - 1; }}\n")),
            4 => body.push_str(&format!("    bump(&mut v{x}, v{y});\n")),
            5 => body.push_str(&format!("    v{x} = read_pair(&v{y}, v{x});\n")),
            6 => body.push_str(&format!("    t = (v{x}, v{y});\n")),
            _ => body.push_str(&format!("    t.{} = v{y};\n", x % 2)),
        }
    }
    body.push_str("    return v0 + v1 + t.0;\n}\n");
    body
}

proptest! {
    /// Random programs: the two domains agree on every function, under the
    /// four headline conditions, including naive (unmemoized) whole-program
    /// recursion.
    #[test]
    fn random_programs_are_bit_identical(
        ops in prop::collection::vec((0u8..8, 0usize..4, 0usize..4), 1..10),
    ) {
        let src = program_from_recipe(&ops);
        let program = compile(&src).expect("generated program compiles");
        for condition in Condition::headline_four() {
            let base = params(condition, DomainKind::Indexed);
            for i in 0..program.bodies.len() {
                assert_equivalent(&program, FuncId(i as u32), &base, "random");
            }
        }
    }
}
