//! The chaos gauntlet as a workspace test: the full fleet stack under a
//! seeded fault schedule at several engine-worker widths.
//!
//! Each run asserts the three robustness invariants end to end:
//!
//! 1. every request is answered by exactly one well-formed response (a
//!    bit-correct summary or a structured error envelope);
//! 2. no request waits past its `deadline=` budget plus scheduling grace;
//! 3. after the faults stop, every summary the fleet serves is
//!    bit-identical to a never-faulted engine's answer — the cache never
//!    launders a torn or stale shard into a wrong result.
//!
//! The failpoint registry is process-global, so every test here takes one
//! lock; the schedule itself is a pure function of the seed, which the
//! determinism test exploits without standing up a fleet at all.

use flowistry_eval::{chaos_fault_spec, measure_chaos};
use std::sync::{Mutex, MutexGuard};

static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    FAILPOINT_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

const SEED: u64 = 0xC0FFEE;

fn gauntlet(workers: usize) {
    let report = measure_chaos(0, SEED, 2, workers, 4, 10);
    assert!(
        report.invariant_violations.is_empty(),
        "invariant violations at {workers} workers:\n  {}",
        report.invariant_violations.join("\n  ")
    );
    assert!(
        report.post_chaos_bit_identical,
        "post-chaos summaries diverged from the fault-free run at {workers} workers"
    );
    assert_eq!(
        report.requests_issued,
        (4 * 10) as u64,
        "every request must be accounted for"
    );
    assert_eq!(
        report.ok_responses + report.structured_errors,
        report.requests_issued,
        "every request must resolve to exactly one well-formed response"
    );
}

#[test]
fn chaos_gauntlet_single_worker() {
    let _guard = lock();
    gauntlet(1);
}

#[test]
fn chaos_gauntlet_two_workers() {
    let _guard = lock();
    gauntlet(2);
}

#[test]
fn chaos_gauntlet_eight_workers() {
    let _guard = lock();
    gauntlet(8);
}

/// Fault schedules are a pure function of the seed: the same seed yields a
/// byte-identical schedule on every run and machine, and a different seed
/// diverges — the property that makes chaos failures replayable.
#[test]
fn fault_schedules_are_deterministic_per_seed() {
    let spec = chaos_fault_spec(SEED);
    let a = flowistry_fault::schedule_preview(&spec, 64).expect("preview");
    let b = flowistry_fault::schedule_preview(&spec, 64).expect("preview");
    assert_eq!(a, b, "same seed must replay byte-identically");
    assert!(
        a.iter().any(|line| !line.ends_with(" none")),
        "the gauntlet schedule must actually inject faults"
    );
    let other =
        flowistry_fault::schedule_preview(&chaos_fault_spec(SEED + 1), 64).expect("preview");
    assert_ne!(a, other, "different seeds must diverge");
}
