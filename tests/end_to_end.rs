//! End-to-end integration tests spanning every crate: source text → MIR →
//! information flow → applications (slicer, IFC) → interpreter.

use flowistry::prelude::*;
use flowistry_lang::mir::Local;

const BANK: &str = r#"
struct Account { balance: i32, overdraft: i32 }

fn insecure_log(x: i32) { }

fn deposit(acct: &mut Account, amount: i32) -> i32 {
    (*acct).balance = (*acct).balance + amount;
    return (*acct).balance;
}

fn can_withdraw(acct: &Account, amount: i32) -> bool {
    return (*acct).balance + (*acct).overdraft >= amount;
}

fn withdraw(acct: &mut Account, amount: i32) -> bool {
    if can_withdraw(acct, amount) {
        (*acct).balance = (*acct).balance - amount;
        return true;
    }
    return false;
}

fn secret_pin() -> i32 { return 9876; }

fn transfer(from: &mut Account, to: &mut Account, amount: i32, pin: i32) -> bool {
    let expected = secret_pin();
    if pin != expected { return false; }
    let ok = withdraw(from, amount);
    if ok {
        let new_balance = deposit(to, amount);
        insecure_log(new_balance);
        return true;
    }
    return false;
}
"#;

#[test]
fn bank_program_compiles_cleanly() {
    let program = compile_strict(BANK).expect("bank program is ownership-safe");
    assert_eq!(program.bodies.len(), 6);
    assert_eq!(program.structs.len(), 1);
}

#[test]
fn modular_analysis_finds_cross_function_flows() {
    let program = compile(BANK).unwrap();
    let func = program.func_id("transfer").unwrap();
    let results = analyze(&program, func, &AnalysisParams::default());
    // The destination account (*to) must depend on the amount argument (_3):
    // deposit() receives it through a unique reference.
    let to_deref = flowistry_lang::mir::Place::from_local(Local(2)).deref();
    let deps = results.exit_theta().read_conflicts(&to_deref);
    let args: Vec<_> = deps.iter().filter_map(|d| d.arg()).collect();
    assert!(args.contains(&Local(3)), "amount flows into *to: {args:?}");
    // ... and on the pin, via control flow (the early return).
    assert!(
        args.contains(&Local(4)),
        "pin controls whether *to changes: {args:?}"
    );
}

#[test]
fn whole_program_is_at_least_as_precise_on_every_variable() {
    let program = compile(BANK).unwrap();
    for (idx, body) in program.bodies.iter().enumerate() {
        let func = flowistry_lang::types::FuncId(idx as u32);
        let modular = analyze(&program, func, &AnalysisParams::default());
        let whole = analyze(
            &program,
            func,
            &AnalysisParams::for_condition(Condition::WHOLE_PROGRAM),
        );
        for (local, deps) in whole.user_variable_deps(body) {
            let m = modular.exit_deps_of_local(local);
            assert!(
                deps.len() <= m.len(),
                "{}: whole-program larger than modular for {local}",
                body.name
            );
        }
    }
}

#[test]
fn interpreter_agrees_with_the_semantics_of_the_flows() {
    let program = compile(BANK).unwrap();
    let interp = Interpreter::new(&program);
    let transfer = program.func_id("transfer").unwrap();
    let account = |balance: i64| {
        Value::Struct(
            program.structs.lookup("Account").unwrap(),
            vec![Value::Int(balance), Value::Int(0)],
        )
    };
    // Correct pin: money moves.
    let out = interp
        .run_with_env(
            transfer,
            vec![account(100), account(5), Value::Int(30), Value::Int(9876)],
        )
        .unwrap();
    assert_eq!(out.return_value, Value::Bool(true));
    assert_eq!(
        out.environment.locals[1],
        Some(Value::Struct(
            program.structs.lookup("Account").unwrap(),
            vec![Value::Int(35), Value::Int(0)]
        ))
    );
    // Wrong pin: nothing changes.
    let out = interp
        .run_with_env(
            transfer,
            vec![account(100), account(5), Value::Int(30), Value::Int(1)],
        )
        .unwrap();
    assert_eq!(out.return_value, Value::Bool(false));
    assert_eq!(out.environment.locals[0], Some(account(100)));
}

#[test]
fn slicer_isolates_the_pin_check() {
    let program = compile(BANK).unwrap();
    let func = program.func_id("transfer").unwrap();
    let slicer = Slicer::new(&program, func, AnalysisParams::default());
    let slice = slicer.backward_slice_of_var("expected").unwrap();
    // The slice of `expected` (the secret pin) is small: it does not include
    // the deposit/withdraw machinery.
    let full = slicer.backward_slice_of_return();
    assert!(slice.locations.len() < full.locations.len());
}

#[test]
fn ifc_checker_flags_the_balance_leak() {
    let program = compile(BANK).unwrap();
    let policy = IfcPolicy::default()
        .with_sink("insecure_log")
        .with_secure_producer("secret_pin")
        .with_secure_param("transfer", "from");
    let checker = IfcChecker::new(&program, policy);
    let report = checker.check_function("transfer").unwrap();
    // The logged balance is influenced by the withdrawal from `from` (a
    // secure account) and control-depends on the secret pin check.
    assert!(!report.is_clean());
}

#[test]
fn noninterference_holds_on_the_bank_program() {
    let program = compile(BANK).unwrap();
    for name in ["deposit", "can_withdraw", "withdraw", "transfer"] {
        let func = program.func_id(name).unwrap();
        if let Some(report) =
            flowistry_interp::check_function(&program, func, &AnalysisParams::default(), 24, 0xBEEF)
        {
            assert!(
                report.holds(),
                "noninterference violated in {name}: {:?}",
                report.violations
            );
        }
    }
}

#[test]
fn all_four_conditions_run_on_the_corpus_sample() {
    // One small generated crate, analyzed under all 8 conditions, to make
    // sure no combination panics on realistic input.
    let profile = &flowistry_corpus::paper_profiles()[0];
    let krate = flowistry_corpus::generate_crate(profile, 1);
    for condition in Condition::all_eight() {
        let params = AnalysisParams {
            condition,
            available_bodies: Some(krate.available_bodies()),
            ..AnalysisParams::default()
        };
        for &func in krate.crate_funcs.iter().take(5) {
            let results = analyze(&krate.program, func, &params);
            assert!(results.iterations() > 0);
        }
    }
}
