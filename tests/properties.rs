//! Property-based tests (proptest) for the core data structures and
//! invariants of the analysis:
//!
//! * place conflict/disjointness algebra (§2.1);
//! * the Θ join is a proper join-semilattice operation;
//! * monotonicity of the analysis conditions (modular ⊆ blind ablations);
//! * soundness spot-checks via the interpreter (noninterference) on randomly
//!   generated straight-line programs.

use flowistry::prelude::*;
use flowistry_dataflow::JoinSemiLattice;
use flowistry_lang::mir::{BasicBlock, Local, Location, Place, PlaceElem};
use proptest::prelude::*;

fn arb_place() -> impl Strategy<Value = Place> {
    (
        0u32..4,
        prop::collection::vec(
            prop_oneof![(0u32..3).prop_map(PlaceElem::Field), Just(PlaceElem::Deref)],
            0..4,
        ),
    )
        .prop_map(|(local, projection)| Place {
            local: Local(local),
            projection,
        })
}

fn arb_dep() -> impl Strategy<Value = Dep> {
    prop_oneof![
        (0u32..6, 0usize..5).prop_map(|(b, i)| Dep::Instr(Location {
            block: BasicBlock(b),
            statement_index: i
        })),
        (1u32..4).prop_map(|l| Dep::Arg(Local(l))),
    ]
}

fn arb_theta() -> impl Strategy<Value = Theta> {
    prop::collection::btree_map(
        arb_place(),
        prop::collection::btree_set(arb_dep(), 0..5),
        0..6,
    )
}

proptest! {
    /// Conflict is reflexive and symmetric; disjointness is its negation.
    #[test]
    fn conflict_relation_algebra(a in arb_place(), b in arb_place()) {
        prop_assert!(a.conflicts_with(&a));
        prop_assert_eq!(a.conflicts_with(&b), b.conflicts_with(&a));
        prop_assert_eq!(a.is_disjoint_from(&b), !a.conflicts_with(&b));
    }

    /// A prefix always conflicts with its extensions, and places rooted at
    /// different locals never conflict.
    #[test]
    fn prefixes_conflict_and_distinct_locals_do_not(
        a in arb_place(),
        elem in prop_oneof![(0u32..3).prop_map(PlaceElem::Field), Just(PlaceElem::Deref)],
    ) {
        let extended = a.project(elem);
        prop_assert!(a.is_prefix_of(&extended));
        prop_assert!(a.conflicts_with(&extended));
        let other = Place { local: Local(a.local.0 + 1), projection: a.projection.clone() };
        prop_assert!(!a.conflicts_with(&other));
    }

    /// The Θ join is idempotent, commutative and monotone (never loses
    /// dependencies) — the requirements for the fixpoint iteration of §4.1.
    #[test]
    fn theta_join_is_a_semilattice(a in arb_theta(), b in arb_theta()) {
        // Idempotence.
        let mut aa = a.clone();
        prop_assert!(!aa.join(&a.clone()));

        // Commutativity.
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(&ab, &ba);

        // Monotonicity: everything in `a` is still in `a ⊔ b`.
        for (place, deps) in &a {
            let joined = &ab[place];
            for d in deps {
                prop_assert!(joined.contains(d));
            }
        }
    }

    /// `read_conflicts` never invents dependencies: the result is a subset of
    /// the union of all recorded dependency sets.
    #[test]
    fn reads_are_subsets_of_recorded_deps(theta in arb_theta(), place in arb_place()) {
        let all: DepSet = theta.values().flatten().copied().collect();
        let read = theta.read_conflicts(&place);
        prop_assert!(read.is_subset(&all));
    }

    /// Randomly generated straight-line programs: the blind ablations are
    /// never more precise than the modular analysis, and the whole-program
    /// condition is never less precise (§5's monotonicity expectations).
    #[test]
    fn condition_monotonicity_on_random_programs(
        ops in prop::collection::vec((0u8..4, 0usize..4, 0usize..4), 1..8),
    ) {
        // Build a small function from a random recipe of statements over
        // four mutable scalars.
        let mut body = String::from("fn f(a: i32, b: i32, c: i32, d: i32) -> i32 {\n");
        body.push_str("    let mut v0 = a;\n    let mut v1 = b;\n    let mut v2 = c;\n    let mut v3 = d;\n");
        for (kind, x, y) in &ops {
            let x = x % 4;
            let y = y % 4;
            match kind % 4 {
                0 => body.push_str(&format!("    v{x} = v{x} + v{y};\n")),
                1 => body.push_str(&format!("    v{x} = v{y} * 2;\n")),
                2 => body.push_str(&format!("    if v{y} > 0 {{ v{x} = v{x} + 1; }}\n")),
                _ => body.push_str(&format!("    v{x} = helper(v{y}, v{x});\n")),
            }
        }
        body.push_str("    return v0 + v1;\n}\n");
        let src = format!("fn helper(p: i32, q: i32) -> i32 {{ return p + 1; }}\n{body}");

        let program = compile(&src).expect("generated program compiles");
        let func = program.func_id("f").unwrap();
        let modular = analyze(&program, func, &AnalysisParams::default());
        let whole = analyze(&program, func, &AnalysisParams::for_condition(Condition::WHOLE_PROGRAM));
        let mut_blind = analyze(&program, func, &AnalysisParams::for_condition(Condition::MUT_BLIND));
        let ref_blind = analyze(&program, func, &AnalysisParams::for_condition(Condition::REF_BLIND));
        for (local, deps) in modular.user_variable_deps(program.body(func)) {
            prop_assert!(whole.exit_deps_of_local(local).len() <= deps.len());
            prop_assert!(mut_blind.exit_deps_of_local(local).len() >= deps.len());
            prop_assert!(ref_blind.exit_deps_of_local(local).len() >= deps.len());
        }
    }

    /// Empirical noninterference (Theorem 3.1) on the same random programs:
    /// varying only inputs outside the computed dependency set never changes
    /// the return value.
    #[test]
    fn noninterference_on_random_programs(
        ops in prop::collection::vec((0u8..3, 0usize..4, 0usize..4), 1..6),
        seed in 1u64..1_000_000,
    ) {
        let mut body = String::from("fn f(a: i32, b: i32, c: i32, d: i32) -> i32 {\n");
        body.push_str("    let mut v0 = a;\n    let mut v1 = b;\n    let mut v2 = 0;\n    let mut v3 = 1;\n");
        for (kind, x, y) in &ops {
            let x = x % 4;
            let y = y % 4;
            match kind % 3 {
                0 => body.push_str(&format!("    v{x} = v{x} + v{y};\n")),
                1 => body.push_str(&format!("    if v{y} > 2 {{ v{x} = v{y} - 1; }}\n")),
                _ => body.push_str(&format!("    v{x} = v{y} * v{x};\n")),
            }
        }
        body.push_str("    return v2 + v3;\n}\n");
        let program = compile(&body).expect("generated program compiles");
        let func = program.func_id("f").unwrap();
        let report = flowistry_interp::check_function(
            &program,
            func,
            &AnalysisParams::default(),
            6,
            seed,
        ).expect("signature supported");
        prop_assert!(report.holds(), "violations: {:?}", report.violations);
    }
}
